//! # pmt — Power Measurement Toolkit
//!
//! Reproduction of PMT (Corda, Veenboer, Tolley — HUST 2022, the paper's
//! ref. \[4\]): one measurement interface over many vendor back-ends, so that
//! instrumented application code is portable across CPU+GPU architectures.
//!
//! * [`PowerSensor`] — the common trait; [`backends`] provides NVML,
//!   rocm-smi, RAPL (package + DRAM), Cray pm_counters and Dummy.
//! * [`Pmt`] — a handle with cumulative-energy state: `read()` returns a
//!   [`State`]; [`seconds`]/[`joules`]/[`watts`] combine two states.
//! * [`Pmt::dump_samples`]/[`Pmt::write_dump`] — the async dump-thread
//!   equivalent: a fixed-rate power trace for post-hoc analysis.
//!
//! ```
//! use archsim::{GpuDevice, GpuSpec, KernelWorkload};
//! use parking_lot::Mutex;
//! use pmt::{backends::NvmlSensor, joules, seconds, Pmt};
//! use std::sync::Arc;
//!
//! let gpu = Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_pcie_40gb())));
//! let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&gpu))));
//! let start = pmt.read();
//! gpu.lock().run_region(&KernelWorkload::new("Density", 1e12, 2e11));
//! let end = pmt.read();
//! assert!(joules(&start, &end).0 > 0.0);
//! assert!(seconds(&start, &end) > 0.0);
//! ```

pub mod backends;
pub mod sensor;

use archsim::{Joules, SimDuration, SimInstant, Watts};
use pm_counters::RolloverCorrector;

pub use sensor::{joules, seconds, watts, PowerSensor, SensorKind, State};

/// A PMT instance: one sensor plus cumulative-energy bookkeeping.
///
/// Reads are expected to be (weakly) monotonic in device time; the cumulative
/// counter advances incrementally so a long run costs O(total segments), not
/// O(reads × segments).
///
/// With a fault handle installed ([`Pmt::with_faults`]) the sampling path
/// models the real acquisition layer's failure modes: individual reads can be
/// dropped or duplicated (the caller sees the previous [`State`] again) and
/// the cumulative energy register can wrap, which is detected and corrected
/// by a [`RolloverCorrector`] so reported joules stay monotone.
pub struct Pmt {
    sensor: Box<dyn PowerSensor>,
    last_read: SimInstant,
    cumulative: Joules,
    faults: faults::DeviceFaults,
    rollover: Option<RolloverCorrector>,
    last_state: Option<State>,
    /// Stale (dropped/duplicated) reads since the last good one; recovered
    /// in bulk when the next good read re-anchors the measurement.
    stale_pending: u64,
}

impl Pmt {
    /// Wrap a backend sensor.
    pub fn new(sensor: Box<dyn PowerSensor>) -> Self {
        Pmt {
            sensor,
            last_read: SimInstant::ZERO,
            cumulative: Joules::ZERO,
            faults: faults::DeviceFaults::default(),
            rollover: None,
            last_state: None,
            stale_pending: 0,
        }
    }

    /// Install a fault handle on the sampling path (inert by default).
    pub fn with_faults(mut self, handle: faults::DeviceFaults) -> Self {
        self.faults = handle;
        self
    }

    /// Backend kind.
    pub fn kind(&self) -> SensorKind {
        self.sensor.kind()
    }

    /// Backend label, e.g. `"nvml:0"`.
    pub fn label(&self) -> String {
        self.sensor.label()
    }

    /// Take a measurement at the device's current instant. Subject to
    /// injected sample faults: a dropped or duplicated sample returns the
    /// previous state again (both are observationally stale data to a
    /// cumulative-counter reader).
    pub fn read(&mut self) -> State {
        if let Some(prev) = self.last_state {
            if self.faults.sample_fault() != faults::SampleFault::None {
                self.faults.note_injected(faults::Channel::PowerSample);
                self.stale_pending += 1;
                return prev;
            }
        }
        self.read_exact()
    }

    /// Take a measurement bypassing sample-fault injection (the end-of-run
    /// read, which must re-anchor any outstanding stale samples).
    pub fn read_exact(&mut self) -> State {
        let t = self.sensor.now();
        if t > self.last_read {
            self.cumulative += self.sensor.energy_between(self.last_read, t);
            self.last_read = t;
        }
        // What the raw register shows is `cumulative % modulus` when the
        // rollover channel is active; reconstruct the monotone value.
        let reported = match self.faults.energy_rollover_j() {
            Some(modulus) => {
                let corr = self
                    .rollover
                    .get_or_insert_with(|| RolloverCorrector::new(modulus));
                let (fixed, wrapped) = corr.correct(self.cumulative.0 % modulus);
                if wrapped {
                    // Detection *is* the recovery: the corrected value is
                    // exact, so the wrap is absorbed at the read that saw it.
                    self.faults.note_injected(faults::Channel::EnergyCounter);
                    self.faults.note_recovered(faults::Channel::EnergyCounter);
                }
                Joules(fixed)
            }
            None => self.cumulative,
        };
        // A good read re-anchors the (before, after) measurement pair, so
        // any run of stale samples ends here.
        if self.stale_pending > 0 {
            self.faults
                .note_recovered_n(faults::Channel::PowerSample, self.stale_pending);
            self.stale_pending = 0;
        }
        let state = State {
            timestamp: t,
            watts: self.sensor.power_now(),
            joules: reported,
        };
        self.last_state = Some(state);
        state
    }

    /// Energy-counter wraps detected (and corrected) so far.
    pub fn rollovers_corrected(&self) -> u64 {
        self.rollover.as_ref().map_or(0, RolloverCorrector::wraps)
    }

    /// Exact energy over an explicit window (post-hoc analysis).
    pub fn joules_between(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.sensor.energy_between(a, b)
    }

    /// Energy over a window as estimated by polling at `period` — the
    /// sampling-rate ablation hook.
    pub fn sampled_joules_between(
        &self,
        a: SimInstant,
        b: SimInstant,
        period: SimDuration,
    ) -> Joules {
        self.sensor.sampled_energy_between(a, b, period)
    }

    /// Fixed-rate power trace over `[from, to]` — what PMT's dump thread
    /// writes while the application runs.
    pub fn dump_samples(
        &self,
        from: SimInstant,
        to: SimInstant,
        period: SimDuration,
    ) -> Vec<(SimInstant, Watts)> {
        assert!(!period.is_zero(), "dump period must be positive");
        let mut out = Vec::new();
        let mut t = from;
        loop {
            let w = self
                .sensor
                .energy_between(t, t + period)
                .average_power(period);
            out.push((t, w));
            if t >= to {
                break;
            }
            t += period;
        }
        out
    }

    /// Write a dump trace as TSV (`virtual_seconds\twatts`), the shape PMT's
    /// dump files have.
    pub fn write_dump(
        &self,
        path: &std::path::Path,
        from: SimInstant,
        to: SimInstant,
        period: SimDuration,
    ) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            f,
            "# pmt dump sensor={} period_s={}",
            self.label(),
            period.as_secs_f64()
        )?;
        for (t, w) in self.dump_samples(from, to, period) {
            writeln!(f, "{:.6}\t{:.3}", t.as_secs_f64(), w.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::backends::*;
    use super::*;
    use archsim::{cscs_a100, GpuDevice, GpuSpec, KernelWorkload, MegaHertz, Node};
    use parking_lot::Mutex;
    use pm_counters::PmCounters;
    use std::sync::Arc;

    fn gpu() -> Arc<Mutex<GpuDevice>> {
        Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_sxm4_80gb())))
    }

    fn work() -> KernelWorkload {
        KernelWorkload::new("MomentumEnergy", 1e12, 1e11).with_activity(0.9, 0.6)
    }

    #[test]
    fn cumulative_energy_is_monotone_across_reads() {
        let g = gpu();
        let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g))));
        let s0 = pmt.read();
        g.lock().run_region(&work());
        let s1 = pmt.read();
        g.lock().run_region(&work());
        let s2 = pmt.read();
        assert!(s0.joules <= s1.joules);
        assert!(s1.joules < s2.joules);
        // Region deltas add up to the total.
        let total = joules(&s0, &s2);
        let parts = joules(&s0, &s1) + joules(&s1, &s2);
        assert!((total.0 - parts.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_reads_match_direct_integral() {
        let g = gpu();
        let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g))));
        let s0 = pmt.read();
        for _ in 0..5 {
            g.lock().run_region(&work());
            pmt.read();
        }
        let s_end = pmt.read();
        let direct = g.lock().energy_between(s0.timestamp, s_end.timestamp);
        assert!((joules(&s0, &s_end).0 - direct.0).abs() < 1e-9);
    }

    #[test]
    fn rapl_scales_by_sockets() {
        let node = Node::new(archsim::mini_hpc().node); // 2 sockets
        let end = SimInstant::from_nanos(1_000_000_000);
        node.settle_until(end, 0.5, 0.2);
        let one = Pmt::new(Box::new(RaplSensor::new(node.cpu(), 1)));
        let two = Pmt::new(Box::new(RaplSensor::new(node.cpu(), 2)));
        let e1 = one.joules_between(SimInstant::ZERO, end);
        let e2 = two.joules_between(SimInstant::ZERO, end);
        assert!((e2.0 - 2.0 * e1.0).abs() < 1e-9);
    }

    #[test]
    fn cray_backend_reads_whole_node_quantized() {
        let node = Node::new(cscs_a100().node);
        let end = SimInstant::from_nanos(1_050_000_000); // 1.05 s
        node.settle_until(end, 0.2, 0.3);
        let mut pmt = Pmt::new(Box::new(CraySensor::new(PmCounters::attach(&node))));
        let s = pmt.read();
        // Node-level reading includes aux; must exceed any single GPU's idle.
        assert!(s.joules.0 > 0.0);
        assert_eq!(pmt.kind(), SensorKind::Node);
        // Quantized to the last 10 Hz tick: energy at 1.04s equals at 1.0s.
        let e_a = pmt.joules_between(SimInstant::ZERO, SimInstant::from_nanos(1_000_000_000));
        let e_b = pmt.joules_between(SimInstant::ZERO, SimInstant::from_nanos(1_040_000_000));
        assert_eq!(e_a.0, e_b.0);
    }

    #[test]
    fn dummy_backend_reads_zero() {
        let mut pmt = Pmt::new(Box::new(DummySensor::new()));
        let s = pmt.read();
        assert_eq!(s.watts, Watts::ZERO);
        assert_eq!(s.joules, Joules::ZERO);
    }

    #[test]
    fn sampled_energy_converges_to_exact_with_finer_period() {
        let g = gpu();
        g.lock().set_application_clocks(MegaHertz(1410)).unwrap();
        let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g))));
        for _ in 0..10 {
            g.lock().run_region(&work());
            g.lock().advance_idle(SimDuration::from_millis(1));
        }
        let end = pmt.read().timestamp;
        let exact = pmt.joules_between(SimInstant::ZERO, end);
        let coarse =
            pmt.sampled_joules_between(SimInstant::ZERO, end, SimDuration::from_millis(100));
        let fine = pmt.sampled_joules_between(SimInstant::ZERO, end, SimDuration::from_micros(50));
        let err_coarse = (coarse.0 - exact.0).abs() / exact.0;
        let err_fine = (fine.0 - exact.0).abs() / exact.0;
        assert!(
            err_fine <= err_coarse + 1e-12,
            "finer sampling must not be worse"
        );
        assert!(
            err_fine < 0.01,
            "fine sampling should be near-exact: {err_fine}"
        );
    }

    #[test]
    fn dump_trace_has_expected_length_and_positive_power() {
        let g = gpu();
        let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g))));
        g.lock().run_region(&work());
        let end = pmt.read().timestamp;
        let samples = pmt.dump_samples(SimInstant::ZERO, end, SimDuration::from_millis(1));
        assert!(!samples.is_empty());
        assert!(samples.iter().any(|(_, w)| w.0 > 0.0));
    }

    #[test]
    fn write_dump_produces_tsv() {
        let g = gpu();
        let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g))));
        g.lock().run_region(&work());
        let end = pmt.read().timestamp;
        let path = std::env::temp_dir().join("pmt_dump_test.tsv");
        pmt.write_dump(&path, SimInstant::ZERO, end, SimDuration::from_millis(1))
            .unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("# pmt dump sensor=nvml:0"));
        assert!(contents.lines().count() > 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dropped_samples_return_stale_state_and_recover() {
        if !faults::ENABLED {
            return;
        }
        let inj = faults::FaultInjector::new(faults::FaultProfile {
            seed: 3,
            sample_drop: 0.5,
            ..faults::FaultProfile::default()
        });
        let g = gpu();
        let mut pmt =
            Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g)))).with_faults(inj.device(0));
        let mut prev = pmt.read(); // first read is always good
        let mut stale_seen = 0;
        for _ in 0..64 {
            g.lock().run_region(&work());
            let s = pmt.read();
            if s == prev {
                stale_seen += 1;
            }
            assert!(s.joules >= prev.joules, "reads must stay monotone");
            prev = s;
        }
        assert!(stale_seen > 0, "a 50% drop rate must produce stale reads");
        // The exact end-of-run read re-anchors everything outstanding.
        let fin = pmt.read_exact();
        assert!(fin.joules >= prev.joules);
        let stats = inj.stats();
        assert_eq!(
            stats.power_sample_injected, stats.power_sample_recovered,
            "all stale samples recovered at the next good read"
        );
        assert_eq!(stats.power_sample_injected, stale_seen);
    }

    #[test]
    fn energy_rollover_is_detected_and_corrected() {
        if !faults::ENABLED {
            return;
        }
        // Correction reconstructs the counter exactly while at most one wrap
        // happens per read (the same sampling-rate contract a real wrapping
        // register imposes), so size the register from one region's energy.
        let region_j = {
            let probe = gpu();
            let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&probe))));
            let start = pmt.read();
            probe.lock().run_region(&work());
            pmt.read().joules.0 - start.joules.0
        };
        let inj = faults::FaultInjector::new(faults::FaultProfile {
            energy_rollover_j: Some(region_j * 1.6), // wraps every other region
            ..faults::FaultProfile::default()
        });
        let g = gpu();
        let mut faulty =
            Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g)))).with_faults(inj.device(0));
        let mut clean = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g))));
        faulty.read();
        clean.read();
        let mut last = Joules::ZERO;
        for _ in 0..8 {
            g.lock().run_region(&work());
            let f = faulty.read();
            let c = clean.read();
            assert!(f.joules >= last, "corrected counter must stay monotone");
            let rel = (f.joules.0 - c.joules.0).abs() / c.joules.0.max(1e-9);
            assert!(rel < 1e-9, "correction must be exact, off by {rel}");
            last = f.joules;
        }
        assert!(
            faulty.rollovers_corrected() >= 1,
            "register must have wrapped"
        );
        let stats = inj.stats();
        assert!(stats.energy_counter_injected >= 1);
        assert!(stats.all_recovered());
    }

    #[test]
    fn rocm_and_dram_sensors_label_correctly() {
        let node = Node::new(archsim::lumi_g().node);
        let rocm = RocmSensor::new(3, node.gpu(3).unwrap());
        assert_eq!(rocm.label(), "rocm:3");
        assert_eq!(rocm.kind(), SensorKind::Gpu);
        let dram = DramSensor::new(node.mem());
        assert_eq!(dram.label(), "rapl:dram");
        assert_eq!(dram.kind(), SensorKind::Memory);
    }
}
