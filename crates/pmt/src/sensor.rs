//! The `PowerSensor` abstraction and measurement `State`.

use serde::{Deserialize, Serialize};

use archsim::{Joules, SimDuration, SimInstant, Watts};

/// What a sensor measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensorKind {
    /// One GPU device (NVML / rocm-smi backends).
    Gpu,
    /// A CPU package (RAPL backend).
    Cpu,
    /// Node DRAM.
    Memory,
    /// The whole node (Cray pm_counters backend).
    Node,
    /// The zero-reading placeholder backend.
    Dummy,
}

/// One measurement: the PMT `State` — timestamp, instantaneous power, and
/// cumulative energy since sensor start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct State {
    pub timestamp: SimInstant,
    pub watts: Watts,
    /// Cumulative joules since the sensor was created.
    pub joules: Joules,
}

/// Elapsed seconds between two states (PMT's `PMT::seconds`).
pub fn seconds(start: &State, end: &State) -> f64 {
    (end.timestamp - start.timestamp).as_secs_f64()
}

/// Energy between two states (PMT's `PMT::joules`).
pub fn joules(start: &State, end: &State) -> Joules {
    end.joules - start.joules
}

/// Average power between two states (PMT's `PMT::watts`).
pub fn watts(start: &State, end: &State) -> Watts {
    joules(start, end).average_power(end.timestamp - start.timestamp)
}

/// A power-measurement backend. All backends answer three questions about
/// the device they watch: what time is it there, what is it drawing now, and
/// how much energy flowed over a window.
pub trait PowerSensor: Send {
    /// Which device class this sensor watches.
    fn kind(&self) -> SensorKind;

    /// Human-readable backend/device label (e.g. `"nvml:0"`).
    fn label(&self) -> String;

    /// The device-local virtual instant up to which readings are valid.
    fn now(&self) -> SimInstant;

    /// Instantaneous power at [`PowerSensor::now`].
    fn power_now(&self) -> Watts;

    /// Exact energy integral over `[a, b)`.
    fn energy_between(&self, a: SimInstant, b: SimInstant) -> Joules;

    /// Energy over `[a, b)` as a polling tool sampling at `period` would
    /// estimate it. Backends that are themselves sampled (Cray) return their
    /// native quantization regardless of `period`.
    fn sampled_energy_between(&self, a: SimInstant, b: SimInstant, period: SimDuration) -> Joules;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(ms: u64, w: f64, j: f64) -> State {
        State {
            timestamp: SimInstant::from_nanos(ms * 1_000_000),
            watts: Watts(w),
            joules: Joules(j),
        }
    }

    #[test]
    fn state_combinators_match_pmt_semantics() {
        let a = st(0, 100.0, 0.0);
        let b = st(2000, 150.0, 250.0);
        assert_eq!(seconds(&a, &b), 2.0);
        assert_eq!(joules(&a, &b), Joules(250.0));
        assert_eq!(watts(&a, &b), Watts(125.0));
    }

    #[test]
    fn watts_of_zero_window_is_zero() {
        let a = st(10, 0.0, 5.0);
        assert_eq!(watts(&a, &a), Watts::ZERO);
    }
}
