//! Communication cost model for virtual time.
//!
//! Collectives and halo exchanges advance rank clocks by a latency/bandwidth
//! (Hockney-style) model: `T = L * ceil(log2(P)) + bytes / B`. The absolute
//! constants (Slingshot-class interconnect) matter less than the qualitative
//! effect the paper observes: communication phases leave the GPU idle, which
//! is where the DVFS governor's clock decays below 1000 MHz (§IV-E).

use serde::{Deserialize, Serialize};

use archsim::SimDuration;

/// Latency/bandwidth parameters of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommCost {
    /// Per-hop message latency.
    pub latency: SimDuration,
    /// Link bandwidth, bytes per second.
    pub bandwidth: f64,
}

impl Default for CommCost {
    fn default() -> Self {
        // Slingshot-11-like: ~2 us MPI latency, 25 GB/s effective per rank.
        CommCost {
            latency: SimDuration::from_micros(2),
            bandwidth: 25e9,
        }
    }
}

impl CommCost {
    /// A zero-cost model (unit tests that only care about values).
    pub fn free() -> Self {
        CommCost {
            latency: SimDuration::ZERO,
            bandwidth: f64::INFINITY,
        }
    }

    /// Cost of a point-to-point message of `bytes`.
    pub fn p2p(&self, bytes: usize) -> SimDuration {
        self.latency + self.transfer(bytes)
    }

    /// Cost of a collective over `size` ranks moving `bytes` per rank.
    pub fn collective(&self, size: usize, bytes: usize) -> SimDuration {
        let hops = usize::BITS - size.max(1).next_power_of_two().leading_zeros() - 1;
        self.latency * u64::from(hops.max(1)) + self.transfer(bytes)
    }

    fn transfer(&self, bytes: usize) -> SimDuration {
        if self.bandwidth.is_infinite() || bytes == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_cost_is_latency_plus_transfer() {
        let c = CommCost {
            latency: SimDuration::from_micros(2),
            bandwidth: 1e9,
        };
        let d = c.p2p(1_000_000); // 1 MB at 1 GB/s = 1 ms
        assert_eq!(d, SimDuration::from_micros(2) + SimDuration::from_millis(1));
    }

    #[test]
    fn collective_scales_with_log_ranks() {
        let c = CommCost {
            latency: SimDuration::from_micros(2),
            bandwidth: f64::INFINITY,
        };
        let d2 = c.collective(2, 0);
        let d32 = c.collective(32, 0);
        assert_eq!(d2, SimDuration::from_micros(2));
        assert_eq!(d32, SimDuration::from_micros(10)); // log2(32)=5 hops
    }

    #[test]
    fn free_model_costs_nothing() {
        let c = CommCost::free();
        assert_eq!(c.p2p(1 << 30), SimDuration::ZERO);
        assert_eq!(c.collective(64, 1 << 30), SimDuration::ZERO);
    }

    #[test]
    fn single_rank_collective_still_has_latency_floor() {
        let c = CommCost::default();
        assert!(c.collective(1, 0) >= c.latency);
    }
}
