//! Per-rank execution context: clock, collectives, point-to-point messaging.

use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use archsim::{SimDuration, SimInstant};

use crate::cost::CommCost;
use crate::shared::{AllgatherSlot, Envelope};

/// Reduction operators for `allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Min,
    Max,
    Sum,
}

/// Communication counters a rank accumulates over its lifetime — the data a
/// profiler would attribute to MPI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Collective operations entered (barrier/allreduce/allgather/bcast).
    pub collectives: u64,
    /// Bytes contributed to collectives.
    pub collective_bytes: u64,
    /// Point-to-point messages sent.
    pub sends: u64,
    /// Bytes sent point-to-point.
    pub send_bytes: u64,
    /// Point-to-point messages received.
    pub recvs: u64,
    /// Bytes received point-to-point.
    pub recv_bytes: u64,
}

/// Handle a rank's code runs against — the `MPI_Comm` of this runtime.
///
/// Every collective synchronizes *virtual clocks* as well as data: all
/// participants leave with `max(entry clocks) + model cost`, which is exactly
/// how a bulk-synchronous simulation timeline behaves.
pub struct RankCtx {
    rank: usize,
    size: usize,
    clock: SimInstant,
    slot: Arc<AllgatherSlot>,
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Receiver<Envelope>>,
    cost: CommCost,
    stats: CommStats,
    faults: faults::DeviceFaults,
    /// Straggler stalls injected since the last collective; a collective's
    /// clock synchronization absorbs them.
    stalls_pending: u64,
}

impl RankCtx {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        slot: Arc<AllgatherSlot>,
        senders: Vec<Sender<Envelope>>,
        receivers: Vec<Receiver<Envelope>>,
        cost: CommCost,
    ) -> Self {
        RankCtx {
            rank,
            size,
            clock: SimInstant::ZERO,
            slot,
            senders,
            receivers,
            cost,
            stats: CommStats::default(),
            faults: faults::DeviceFaults::default(),
            stalls_pending: 0,
        }
    }

    /// Install this rank's fault handle (inert by default). Local compute
    /// (`advance`) then becomes subject to injected straggler stalls.
    pub fn install_faults(&mut self, handle: faults::DeviceFaults) {
        self.faults = handle;
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The communication cost model in effect.
    pub fn cost(&self) -> CommCost {
        self.cost
    }

    /// This rank's virtual clock.
    pub fn now(&self) -> SimInstant {
        self.clock
    }

    /// Advance the local clock by `d` (local computation). An injected
    /// straggler stall inflates this one advance; the lost time is absorbed
    /// by the clock synchronization of the next collective.
    pub fn advance(&mut self, d: SimDuration) {
        let mut d = d;
        if !d.is_zero() && self.faults.straggler_stall() {
            self.faults.note_injected(faults::Channel::Straggler);
            self.stalls_pending += 1;
            let extra_ns = (d.as_nanos() as f64 * (self.faults.straggler_factor() - 1.0)) as u64;
            d += SimDuration::from_nanos(extra_ns);
        }
        self.clock += d;
    }

    /// Jump the local clock forward to `t` (no-op if already past).
    pub fn advance_to(&mut self, t: SimInstant) {
        self.clock = self.clock.max(t);
    }

    /// Communication counters accumulated so far.
    pub fn comm_stats(&self) -> CommStats {
        self.stats
    }

    /// Gather every rank's bytes; returns contributions in rank order.
    /// Synchronizes clocks to `max + collective cost`.
    pub fn allgather_bytes(&mut self, data: Vec<u8>) -> Vec<Vec<u8>> {
        self.stats.collectives += 1;
        self.stats.collective_bytes += data.len() as u64;
        let entry = self.clock;
        let max_bytes = data.len();
        let bytes_in = data.len();
        let gathered = self
            .slot
            .allgather(self.rank, (self.clock.as_nanos(), data));
        let mut max_clock = self.clock;
        let mut max_len = max_bytes;
        for (ns, payload) in &gathered {
            max_clock = max_clock.max(SimInstant::from_nanos(*ns));
            max_len = max_len.max(payload.len());
        }
        self.clock = max_clock + self.cost.collective(self.size, max_len);
        // The bulk-synchronous sync point is the straggler recovery: every
        // rank leaves at max(entry clocks), so a stalled rank's lost time is
        // bounded by one collective interval.
        if self.stalls_pending > 0 {
            self.faults
                .note_recovered_n(faults::Channel::Straggler, self.stalls_pending);
            self.stalls_pending = 0;
        }
        if telemetry::active() {
            telemetry::span_complete(
                "comm",
                "allgather",
                entry.as_nanos(),
                self.clock.as_nanos(),
                vec![("bytes", bytes_in.into()), ("world", self.size.into())],
            );
        }
        gathered.into_iter().map(|(_, payload)| payload).collect()
    }

    /// Barrier: synchronize clocks, move no data.
    pub fn barrier(&mut self) {
        let _ = self.allgather_bytes(Vec::new());
    }

    /// Allreduce over `f64` with the given operator.
    pub fn allreduce_f64(&mut self, value: f64, op: Op) -> f64 {
        let parts = self.allgather_bytes(value.to_le_bytes().to_vec());
        let vals = parts
            .iter()
            .map(|b| f64::from_le_bytes(b.as_slice().try_into().expect("8-byte f64 payload")));
        match op {
            Op::Min => vals.fold(f64::INFINITY, f64::min),
            Op::Max => vals.fold(f64::NEG_INFINITY, f64::max),
            Op::Sum => vals.sum(),
        }
    }

    /// Allreduce over `u64`.
    pub fn allreduce_u64(&mut self, value: u64, op: Op) -> u64 {
        let parts = self.allgather_bytes(value.to_le_bytes().to_vec());
        let vals = parts
            .iter()
            .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("8-byte u64 payload")));
        match op {
            Op::Min => vals.min().expect("non-empty world"),
            Op::Max => vals.max().expect("non-empty world"),
            Op::Sum => vals.sum(),
        }
    }

    /// Gather every rank's `f64` slice (variable length) in rank order.
    pub fn allgather_f64s(&mut self, values: &[f64]) -> Vec<Vec<f64>> {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.allgather_bytes(bytes)
            .into_iter()
            .map(|b| {
                b.chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunks")))
                    .collect()
            })
            .collect()
    }

    /// Broadcast `data` from `root` to everyone.
    pub fn broadcast_bytes(&mut self, root: usize, data: Vec<u8>) -> Vec<u8> {
        let payload = if self.rank == root { data } else { Vec::new() };
        let mut gathered = self.allgather_bytes(payload);
        gathered.swap_remove(root)
    }

    /// Non-blocking point-to-point send of `data` to `dst`.
    pub fn send(&mut self, dst: usize, data: Vec<u8>) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        assert_ne!(dst, self.rank, "self-sends are not modeled");
        self.stats.sends += 1;
        self.stats.send_bytes += data.len() as u64;
        if telemetry::active() {
            telemetry::instant(
                "comm",
                "send",
                Some(self.clock.as_nanos()),
                vec![("dst", dst.into()), ("bytes", data.len().into())],
            );
        }
        self.senders[dst]
            .send((self.clock.as_nanos(), data))
            .expect("receiver thread alive for the world's lifetime");
    }

    /// Blocking receive of the next message from `src`. Advances the clock to
    /// the message's arrival time under the cost model.
    pub fn recv(&mut self, src: usize) -> Vec<u8> {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let entry = self.clock;
        let (sent_ns, data) = self.receivers[src]
            .recv()
            .expect("sender thread alive for the world's lifetime");
        let arrival = SimInstant::from_nanos(sent_ns) + self.cost.p2p(data.len());
        self.clock = self.clock.max(arrival);
        self.stats.recvs += 1;
        self.stats.recv_bytes += data.len() as u64;
        if telemetry::active() {
            telemetry::span_complete(
                "comm",
                "recv",
                entry.as_nanos(),
                self.clock.as_nanos(),
                vec![("src", src.into()), ("bytes", data.len().into())],
            );
        }
        data
    }

    /// Symmetric neighbor exchange (the halo-exchange pattern): send one
    /// message to each peer in `outgoing`, then receive exactly one message
    /// from each of the same peers. Returns `(src, data)` pairs in peer order.
    pub fn exchange(&mut self, outgoing: Vec<(usize, Vec<u8>)>) -> Vec<(usize, Vec<u8>)> {
        let peers: Vec<usize> = outgoing.iter().map(|(dst, _)| *dst).collect();
        for (dst, data) in outgoing {
            self.send(dst, data);
        }
        peers.into_iter().map(|src| (src, self.recv(src))).collect()
    }
}

impl Drop for RankCtx {
    fn drop(&mut self) {
        // A stall after the last collective is absorbed by the end of the
        // rank's run itself; close the accounting so `all_recovered` holds.
        if self.stalls_pending > 0 {
            self.faults
                .note_recovered_n(faults::Channel::Straggler, self.stalls_pending);
            self.stalls_pending = 0;
        }
    }
}
