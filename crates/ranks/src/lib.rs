//! # ranks — MPI-like rank runtime on threads
//!
//! SPH-EXA is MPI+X with one rank per GPU/GCD (§III-A/B). This crate gives
//! the reproduction the same shape: [`run`] spawns one OS thread per rank,
//! each receiving a [`RankCtx`] with collectives (barrier, allreduce,
//! allgather, broadcast) and point-to-point halo exchange, all of which also
//! synchronize the ranks' *virtual clocks* under a latency/bandwidth cost
//! model ([`CommCost`]).
//!
//! ```
//! use ranks::{run, CommCost, Op};
//!
//! let sums = run(4, CommCost::default(), |ctx| {
//!     ctx.allreduce_f64(ctx.rank() as f64, Op::Sum)
//! });
//! assert_eq!(sums, vec![6.0; 4]);
//! ```

mod cost;
mod ctx;
mod shared;

use std::sync::Arc;

use crossbeam::channel::unbounded;

pub use cost::CommCost;
pub use ctx::{CommStats, Op, RankCtx};

use shared::{AllgatherSlot, Envelope};

/// Run `f` on `size` ranks (one thread each) and collect the return values
/// in rank order. Panics in any rank propagate.
pub fn run<F, R>(size: usize, cost: CommCost, f: F) -> Vec<R>
where
    F: Fn(&mut RankCtx) -> R + Send + Sync,
    R: Send,
{
    assert!(size > 0, "world must have at least one rank");
    let slot = Arc::new(AllgatherSlot::new(size));

    // Channel matrix: tx[src][dst] feeds rx[dst][src].
    let mut tx: Vec<Vec<Option<crossbeam::channel::Sender<Envelope>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    let mut rx: Vec<Vec<Option<crossbeam::channel::Receiver<Envelope>>>> = (0..size)
        .map(|_| (0..size).map(|_| None).collect())
        .collect();
    for src in 0..size {
        for dst in 0..size {
            let (s, r) = unbounded();
            tx[src][dst] = Some(s);
            rx[dst][src] = Some(r);
        }
    }

    // Assemble per-rank contexts up front so the closure only borrows `f`.
    let mut ctxs: Vec<RankCtx> = Vec::with_capacity(size);
    for (rank, (tx_row, rx_row)) in tx.into_iter().zip(rx).enumerate() {
        let senders = tx_row
            .into_iter()
            .map(|s| s.expect("filled above"))
            .collect();
        let receivers = rx_row
            .into_iter()
            .map(|r| r.expect("filled above"))
            .collect();
        ctxs.push(RankCtx::new(
            rank,
            size,
            Arc::clone(&slot),
            senders,
            receivers,
            cost,
        ));
    }

    std::thread::scope(|scope| {
        let handles: Vec<_> = ctxs
            .into_iter()
            .map(|mut ctx| {
                let f = &f;
                scope.spawn(move || {
                    if telemetry::active() {
                        telemetry::set_track(format!("rank-{}", ctx.rank()));
                    }
                    f(&mut ctx)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::{SimDuration, SimInstant};

    #[test]
    fn allreduce_ops() {
        let out = run(5, CommCost::free(), |ctx| {
            let r = ctx.rank() as f64;
            (
                ctx.allreduce_f64(r, Op::Sum),
                ctx.allreduce_f64(r, Op::Min),
                ctx.allreduce_f64(r, Op::Max),
                ctx.allreduce_u64(ctx.rank() as u64 + 1, Op::Sum),
            )
        });
        for (sum, min, max, usum) in out {
            assert_eq!(sum, 10.0);
            assert_eq!(min, 0.0);
            assert_eq!(max, 4.0);
            assert_eq!(usum, 15);
        }
    }

    #[test]
    fn collectives_synchronize_clocks_to_slowest_rank() {
        let clocks = run(4, CommCost::default(), |ctx| {
            // Rank r "computes" for r milliseconds.
            ctx.advance(SimDuration::from_millis(ctx.rank() as u64));
            ctx.barrier();
            ctx.now()
        });
        let first = clocks[0];
        assert!(
            clocks.iter().all(|c| *c == first),
            "clocks diverged: {clocks:?}"
        );
        // Everyone is at least as late as the slowest rank plus latency.
        assert!(first >= SimInstant::ZERO + SimDuration::from_millis(3));
    }

    #[test]
    fn broadcast_delivers_root_payload() {
        let out = run(3, CommCost::free(), |ctx| {
            ctx.broadcast_bytes(1, vec![ctx.rank() as u8; 4])
        });
        for payload in out {
            assert_eq!(payload, vec![1u8; 4]);
        }
    }

    #[test]
    fn allgather_f64s_supports_variable_lengths() {
        let out = run(3, CommCost::free(), |ctx| {
            let mine: Vec<f64> = (0..=ctx.rank()).map(|i| i as f64).collect();
            ctx.allgather_f64s(&mine)
        });
        for gathered in out {
            assert_eq!(gathered[0], vec![0.0]);
            assert_eq!(gathered[1], vec![0.0, 1.0]);
            assert_eq!(gathered[2], vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn ring_exchange_delivers_neighbor_data() {
        let out = run(4, CommCost::default(), |ctx| {
            let size = ctx.size();
            let left = (ctx.rank() + size - 1) % size;
            let right = (ctx.rank() + 1) % size;

            ctx.exchange(vec![
                (left, vec![ctx.rank() as u8]),
                (right, vec![ctx.rank() as u8]),
            ])
        });
        for (rank, incoming) in out.iter().enumerate() {
            let left = (rank + 3) % 4;
            let right = (rank + 1) % 4;
            assert_eq!(incoming[0], (left, vec![left as u8]));
            assert_eq!(incoming[1], (right, vec![right as u8]));
        }
    }

    #[test]
    fn recv_advances_clock_by_transfer_cost() {
        let clocks = run(
            2,
            CommCost {
                latency: SimDuration::from_micros(10),
                bandwidth: 1e6,
            },
            |ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, vec![0u8; 1000]); // 1 kB at 1 MB/s = 1 ms
                    ctx.now()
                } else {
                    let _ = ctx.recv(0);
                    ctx.now()
                }
            },
        );
        assert_eq!(clocks[0], SimInstant::ZERO, "send is non-blocking");
        let expect = SimInstant::ZERO + SimDuration::from_micros(10) + SimDuration::from_millis(1);
        assert_eq!(clocks[1], expect);
    }

    #[test]
    fn single_rank_world_works() {
        let out = run(1, CommCost::default(), |ctx| {
            ctx.barrier();
            ctx.allreduce_f64(42.0, Op::Min)
        });
        assert_eq!(out, vec![42.0]);
    }

    #[test]
    fn many_rounds_of_mixed_collectives_stay_consistent() {
        let out = run(6, CommCost::default(), |ctx| {
            let mut acc = 0.0;
            for round in 0..40 {
                let v = (ctx.rank() * 41 + round) as f64;
                acc += ctx.allreduce_f64(v, Op::Max);
                ctx.barrier();
            }
            acc
        });
        let first = out[0];
        assert!(out.iter().all(|v| (*v - first).abs() < 1e-12));
    }

    #[test]
    fn comm_stats_count_operations_and_bytes() {
        let stats = run(2, CommCost::free(), |ctx| {
            ctx.barrier(); // collective, 0 bytes
            ctx.allreduce_f64(1.0, Op::Sum); // collective, 8 bytes
            if ctx.rank() == 0 {
                ctx.send(1, vec![0u8; 100]);
                let _ = ctx.recv(1);
            } else {
                let _ = ctx.recv(0);
                ctx.send(0, vec![0u8; 50]);
            }
            ctx.comm_stats()
        });
        for s in &stats {
            assert_eq!(s.collectives, 2);
            assert_eq!(s.collective_bytes, 8);
            assert_eq!(s.sends, 1);
            assert_eq!(s.recvs, 1);
        }
        assert_eq!(stats[0].send_bytes, 100);
        assert_eq!(stats[0].recv_bytes, 50);
        assert_eq!(stats[1].send_bytes, 50);
        assert_eq!(stats[1].recv_bytes, 100);
    }

    #[test]
    fn results_returned_in_rank_order() {
        let out = run(8, CommCost::free(), |ctx| ctx.rank());
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }
}
