//! Generation-counted allgather slot — the one shared primitive every
//! collective is built from.

use parking_lot::{Condvar, Mutex};

/// Payload carried through a collective: the sender's virtual clock (ns) and
//  an opaque byte message.
pub(crate) type Envelope = (u64, Vec<u8>);

struct Round {
    generation: u64,
    values: Vec<Option<Envelope>>,
    arrived: usize,
    result: Vec<Envelope>,
}

/// A reusable allgather rendezvous for a fixed set of participants.
///
/// Correctness argument for reuse: a participant can only enter generation
/// `g+1` after returning from generation `g`, and generation `g+1` cannot
/// complete (and overwrite `result`) until *every* participant has entered
/// it — so no reader of `result` for `g` can race a writer for `g+1`.
pub(crate) struct AllgatherSlot {
    size: usize,
    state: Mutex<Round>,
    cv: Condvar,
}

impl AllgatherSlot {
    pub fn new(size: usize) -> Self {
        AllgatherSlot {
            size,
            state: Mutex::new(Round {
                generation: 0,
                values: vec![None; size],
                arrived: 0,
                result: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Contribute `value` for `rank` and return everyone's contributions (in
    /// rank order) once all `size` participants have arrived.
    pub fn allgather(&self, rank: usize, value: Envelope) -> Vec<Envelope> {
        assert!(rank < self.size, "rank {rank} out of range {}", self.size);
        let mut g = self.state.lock();
        let my_gen = g.generation;
        assert!(
            g.values[rank].is_none(),
            "rank {rank} entered a collective twice"
        );
        g.values[rank] = Some(value);
        g.arrived += 1;
        if g.arrived == self.size {
            let gathered: Vec<Envelope> = g
                .values
                .iter_mut()
                .map(|v| v.take().expect("all ranks arrived"))
                .collect();
            g.result = gathered.clone();
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            gathered
        } else {
            while g.generation == my_gen {
                self.cv.wait(&mut g);
            }
            g.result.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn allgather_collects_in_rank_order_across_rounds() {
        let slot = Arc::new(AllgatherSlot::new(4));
        let results: Vec<Vec<Envelope>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|r| {
                    let slot = Arc::clone(&slot);
                    s.spawn(move || {
                        let mut last = Vec::new();
                        for round in 0..50u64 {
                            last = slot.allgather(r, (round, vec![r as u8]));
                            // Every round everyone must see all four values.
                            assert_eq!(last.len(), 4);
                            for (i, (g, payload)) in last.iter().enumerate() {
                                assert_eq!(*g, round, "mixed generations");
                                assert_eq!(payload, &vec![i as u8]);
                            }
                        }
                        last
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn single_rank_allgather_returns_immediately() {
        let slot = AllgatherSlot::new(1);
        let out = slot.allgather(0, (7, vec![1, 2, 3]));
        assert_eq!(out, vec![(7, vec![1, 2, 3])]);
    }
}
