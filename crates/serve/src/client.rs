//! Submission client: connect, submit specs, await streamed results.
//!
//! Used by `freqscale-submit` and the integration tests. Relies on the
//! protocol's ordering contract: submit acknowledgements (`Queued` /
//! `Rejected`) arrive in submission order on the connection, and
//! `Running`/`Finished` events are demultiplexed by job id.

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::{read_frame, write_frame, Event, Request, ServerStats};

/// The collected outcome of one submitted spec.
#[derive(Debug, Clone, Default)]
pub struct JobResult {
    /// Display name the submission used.
    pub name: String,
    /// Daemon job id; `None` when the submission was rejected.
    pub job: Option<u64>,
    /// True only for a job that queued, ran and finished ok.
    pub ok: bool,
    /// Rejection reason (`queue_full`, `invalid_spec: …`), when rejected.
    pub rejected: Option<String>,
    /// Failure detail, when the job ran and failed (panics included).
    pub error: Option<String>,
    pub warm_start: bool,
    pub table_version: Option<u64>,
    pub exploration_launches: u64,
    pub elapsed_s: f64,
    pub energy_j: f64,
    pub setup_energy_j: f64,
    pub edp: f64,
    pub queue_wait_s: f64,
    pub recovery: Option<String>,
    /// The job's accounting row in `sacct` pipe-text layout.
    pub sacct: String,
    /// Full experiment report JSON, when the daemon attached one.
    pub report: Option<String>,
}

/// Submit `(name, spec_json)` pairs over one connection and block until
/// every one is rejected or finished. Results come back in spec order.
///
/// Errors only on transport problems (daemon unreachable, stream closed
/// with submissions outstanding); per-job failures and rejections are
/// reported inside the corresponding [`JobResult`].
pub fn submit_all(socket: &Path, specs: &[(String, String)]) -> io::Result<Vec<JobResult>> {
    let mut writer = UnixStream::connect(socket)?;
    let mut reader = BufReader::new(writer.try_clone()?);
    for (name, spec) in specs {
        write_frame(
            &mut writer,
            &Request::Submit {
                spec: spec.clone(),
                name: Some(name.clone()),
            },
        )?;
    }
    let mut results: Vec<JobResult> = specs
        .iter()
        .map(|(name, _)| JobResult {
            name: name.clone(),
            ..JobResult::default()
        })
        .collect();
    // Submit acks arrive in submission order; running jobs key by id.
    let mut next_ack = 0usize;
    let mut by_job: HashMap<u64, usize> = HashMap::new();
    let mut outstanding = specs.len();
    while outstanding > 0 {
        let ev: Event = match read_frame(&mut reader)? {
            Some(e) => e,
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("daemon closed the stream with {outstanding} job(s) outstanding"),
                ));
            }
        };
        match ev {
            Event::Queued { job, .. } => {
                if next_ack < results.len() {
                    results[next_ack].job = Some(job);
                    by_job.insert(job, next_ack);
                    next_ack += 1;
                }
            }
            Event::Rejected { reason, .. } => {
                if next_ack < results.len() {
                    results[next_ack].rejected = Some(reason);
                    next_ack += 1;
                    outstanding -= 1;
                }
            }
            Event::Running { .. } => {}
            Event::Finished {
                job,
                ok,
                error,
                warm_start,
                table_version,
                exploration_launches,
                elapsed_s,
                energy_j,
                setup_energy_j,
                edp,
                queue_wait_s,
                recovery,
                sacct,
                report,
            } => {
                if let Some(&idx) = by_job.get(&job) {
                    let r = &mut results[idx];
                    r.ok = ok;
                    r.error = error;
                    r.warm_start = warm_start;
                    r.table_version = table_version;
                    r.exploration_launches = exploration_launches;
                    r.elapsed_s = elapsed_s;
                    r.energy_j = energy_j;
                    r.setup_energy_j = setup_energy_j;
                    r.edp = edp;
                    r.queue_wait_s = queue_wait_s;
                    r.recovery = recovery;
                    r.sacct = sacct;
                    r.report = report;
                    outstanding -= 1;
                }
            }
            Event::Pong { .. } | Event::Stats { .. } | Event::ShuttingDown => {}
        }
    }
    Ok(results)
}

/// Liveness probe. `Ok(true)` when the daemon answers `Pong`.
pub fn ping(socket: &Path) -> io::Result<bool> {
    let mut writer = UnixStream::connect(socket)?;
    let mut reader = BufReader::new(writer.try_clone()?);
    write_frame(&mut writer, &Request::Ping)?;
    Ok(matches!(
        read_frame::<Event, _>(&mut reader)?,
        Some(Event::Pong { .. })
    ))
}

/// Fetch the daemon's stats snapshot.
pub fn stats(socket: &Path) -> io::Result<ServerStats> {
    let mut writer = UnixStream::connect(socket)?;
    let mut reader = BufReader::new(writer.try_clone()?);
    write_frame(&mut writer, &Request::Stats)?;
    match read_frame::<Event, _>(&mut reader)? {
        Some(Event::Stats { stats }) => Ok(stats),
        other => Err(io::Error::other(format!(
            "expected Stats event, got {other:?}"
        ))),
    }
}

/// Ask the daemon to drain and exit. Returns once it acknowledges.
pub fn shutdown(socket: &Path) -> io::Result<()> {
    let mut writer = UnixStream::connect(socket)?;
    let mut reader = BufReader::new(writer.try_clone()?);
    write_frame(&mut writer, &Request::Shutdown)?;
    match read_frame::<Event, _>(&mut reader)? {
        Some(Event::ShuttingDown) | None => Ok(()),
        other => Err(io::Error::other(format!(
            "expected ShuttingDown event, got {other:?}"
        ))),
    }
}
