//! The experiment daemon: accept loop, bounded queue, worker pool.
//!
//! The daemon is generic over an [`Executor`] — the thing that understands
//! spec files and runs experiments — so the serving machinery (sockets,
//! queueing, table leases, accounting, crash containment) carries no
//! dependency on the experiment runner. `freqscale-serve` plugs the real
//! runner in; the tests plug in mocks that block, fail or panic on cue.
//!
//! ## Lifecycle
//!
//! `Submit` frames are validated on the connection thread (cheap spec
//! parse), acknowledged `Queued` or `Rejected`, and enqueued. Workers pop
//! jobs FIFO, take a table lease when the job warm-starts, emit `Running`,
//! run the executor under `catch_unwind`, and emit exactly one `Finished`.
//! A panicking job — the chaos "kill" — resolves to `Finished { ok: false }`
//! and the worker survives to take the next job; the job's table lease (if
//! an exploration was in flight) is released by the guard's drop, so
//! waiters re-race instead of hanging.
//!
//! ## Accounting
//!
//! Each finished job contributes a Slurm-style accounting row (queue wait,
//! elapsed, whole-job `ConsumedEnergy`, node count) to an in-daemon ledger,
//! served in `Stats` as `sacct` pipe text; the per-job row rides in its
//! `Finished` event.
//!
//! ## Client disconnects
//!
//! Event writes go through a per-connection handle that downgrades write
//! failures to "client gone": the job keeps running, its table publish
//! still happens, and the daemon keeps serving — a disconnect can never
//! wedge a worker.

use std::io::{self, BufRead, BufReader};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use online::{LearnedTable, StoredModels};
use slurm_sim::SacctRow;

use crate::protocol::{write_frame, Event, Request, ServerStats, PROTOCOL_VERSION};
use crate::queue::BoundedQueue;
use crate::tables::{Lease, TableServer, TableServerConfig};

/// What an executor learns from validating a spec, before any work runs.
#[derive(Debug, Clone)]
pub struct JobMeta {
    /// Default display name (e.g. `workload-policy`).
    pub name: String,
    /// GPU spec name — the first half of the table key.
    pub gpu: String,
    /// Workload/store key — the second half of the table key.
    pub workload: String,
    /// Whether this job participates in table serving (online policies).
    pub uses_tables: bool,
    /// Nodes the job will occupy, for the accounting row.
    pub nodes: usize,
}

/// What a finished job reports back.
#[derive(Debug, Clone, Default)]
pub struct JobOutcome {
    /// Table the online tuner learned, for publication. `None` (or empty)
    /// aborts an in-flight exploration instead of publishing.
    pub learned: Option<LearnedTable>,
    /// Fitted per-kernel model coefficients (predictive jobs), published
    /// alongside the table so later leases warm-start probe-free. Empty for
    /// search-only jobs — the table server then preserves whatever models
    /// the entry already holds.
    pub models: StoredModels,
    /// Exploration launches spent (0 on a full warm start).
    pub exploration_launches: u64,
    /// Whole-job wall time, seconds.
    pub elapsed_s: f64,
    /// Whole-job energy (sacct `ConsumedEnergy` view), joules.
    pub energy_j: f64,
    /// Energy attributable to the setup phase, joules.
    pub setup_energy_j: f64,
    /// Energy-delay product over the loop.
    pub edp: f64,
    /// Fault-recovery summary, when the job ran under a fault profile.
    pub recovery: Option<String>,
    /// Full experiment report JSON, if produced.
    pub report: Option<String>,
}

/// The daemon's view of an experiment runner.
pub trait Executor: Send + Sync + 'static {
    /// Cheap pre-queue validation: parse the spec, refuse garbage early,
    /// and derive the job's identity. Runs on the connection thread.
    fn validate(&self, spec_json: &str) -> Result<JobMeta, String>;

    /// Run the experiment. `warm` is the served warm-start table and
    /// `warm_models` the fitted coefficients stored with it (empty when the
    /// entry has none), when the job's key was already resolved by the
    /// table server. Runs on a worker thread; may panic (the daemon
    /// contains it).
    fn execute(
        &self,
        spec_json: &str,
        warm: Option<&LearnedTable>,
        warm_models: &StoredModels,
    ) -> Result<JobOutcome, String>;
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on (created; stale files replaced).
    pub socket: PathBuf,
    /// Bounded queue capacity; pushes past it are rejected `queue_full`.
    pub queue_capacity: usize,
    /// Worker threads; `0` sizes from the `par` layer's default.
    pub workers: usize,
    /// Table-server configuration (persistence dir + LRU capacity).
    pub tables: TableServerConfig,
}

impl ServeConfig {
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            queue_capacity: 16,
            workers: 0,
            tables: TableServerConfig::default(),
        }
    }
}

/// Per-connection event writer; write failures mark the client gone.
#[derive(Clone)]
struct ClientHandle(Arc<Mutex<Option<UnixStream>>>);

impl ClientHandle {
    fn new(stream: UnixStream) -> Self {
        ClientHandle(Arc::new(Mutex::new(Some(stream))))
    }

    /// Send one event; on failure the connection is dropped and later sends
    /// become no-ops. Never propagates the error — a disconnected client
    /// must not affect the job or the daemon.
    fn send(&self, ev: &Event) {
        let mut slot = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = slot.as_mut() {
            if write_frame(stream, ev).is_err() {
                *slot = None;
            }
        }
    }

    /// Run `f` with the writer locked — the submit path uses this to make
    /// enqueue + `Queued` ack atomic with respect to worker events.
    fn locked<R>(&self, f: impl FnOnce(&mut Option<UnixStream>) -> R) -> R {
        let mut slot = self.0.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut slot)
    }
}

struct Job {
    id: u64,
    name: String,
    spec: String,
    meta: JobMeta,
    client: ClientHandle,
    submitted: Instant,
}

struct Shared {
    exec: Box<dyn Executor>,
    queue: BoundedQueue<Job>,
    tables: TableServer,
    socket: PathBuf,
    stop: AtomicBool,
    next_id: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    ledger: Mutex<Vec<SacctRow>>,
}

impl Shared {
    fn server_stats(&self) -> ServerStats {
        ServerStats {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            queue_depth: self.queue.len(),
            tables: self.tables.stats(),
            sacct: self.sacct_text(),
        }
    }

    fn sacct_text(&self) -> String {
        let rows = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::from("JobID|JobName|Elapsed|ConsumedEnergy|NNodes\n");
        for row in rows.iter() {
            out.push_str(&sacct_row_text(row));
        }
        out
    }

    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.close();
        // Poke the accept loop out of its blocking accept.
        let _ = UnixStream::connect(&self.socket);
    }
}

/// One ledger row in the `sacct` pipe-text layout (matches
/// `slurm_sim::Slurm::sacct_text`).
fn sacct_row_text(row: &SacctRow) -> String {
    let energy = row
        .consumed_energy_j
        .map_or("--".to_string(), |j| format!("{j:.0}J"));
    format!(
        "{}|{}|{:.2}s|{}|{}\n",
        row.job_id, row.job_name, row.elapsed_s, energy, row.nodes
    )
}

/// Namespace for [`Daemon::start`].
pub struct Daemon;

impl Daemon {
    /// Bind the socket, spawn the worker pool and the accept loop, and
    /// return a handle. Replaces a stale socket file at the path.
    pub fn start<E: Executor>(cfg: ServeConfig, exec: E) -> io::Result<DaemonHandle> {
        if cfg.socket.exists() {
            std::fs::remove_file(&cfg.socket)?;
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        let tables = TableServer::new(cfg.tables.clone())
            .map_err(|e| io::Error::other(format!("table server: {e}")))?;
        let shared = Arc::new(Shared {
            exec: Box::new(exec),
            queue: BoundedQueue::new(cfg.queue_capacity.max(1)),
            tables,
            socket: cfg.socket.clone(),
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            ledger: Mutex::new(Vec::new()),
        });
        let worker_count = if cfg.workers == 0 {
            par::max_threads()
        } else {
            cfg.workers
        };
        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn accept loop")
        };
        Ok(DaemonHandle {
            shared,
            accept,
            workers,
        })
    }
}

/// Running daemon: stop it, join it, inspect it.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// Stop accepting, close the queue (already-queued jobs still drain).
    pub fn stop(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the accept loop and all workers, flush table write-behind,
    /// and remove the socket file.
    pub fn join(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
        self.shared.tables.flush();
        let _ = std::fs::remove_file(&self.shared.socket);
    }

    pub fn socket(&self) -> &Path {
        &self.shared.socket
    }

    /// The shared table server (tests inspect stats through this).
    pub fn tables(&self) -> TableServer {
        self.shared.tables.clone()
    }

    pub fn stats(&self) -> ServerStats {
        self.shared.server_stats()
    }
}

fn accept_loop(listener: UnixListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                let shared = shared.clone();
                // Connection threads are detached: they end at client EOF,
                // and jobs hold their own writer handle, so a connection
                // thread never outlives anything that matters.
                let _ = std::thread::Builder::new()
                    .name("serve-client".into())
                    .spawn(move || handle_client(&shared, s));
            }
            Err(_) => continue,
        }
    }
}

fn handle_client(shared: &Arc<Shared>, stream: UnixStream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let client = ClientHandle::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let req: Request = match serde_json::from_str(line.trim()) {
            Ok(r) => r,
            Err(e) => {
                client.send(&Event::Rejected {
                    reason: format!("bad_request: {e}"),
                    name: None,
                });
                continue;
            }
        };
        match req {
            Request::Submit { spec, name } => submit(shared, &client, spec, name),
            Request::Ping => client.send(&Event::Pong {
                version: PROTOCOL_VERSION,
            }),
            Request::Stats => client.send(&Event::Stats {
                stats: shared.server_stats(),
            }),
            Request::Shutdown => {
                client.send(&Event::ShuttingDown);
                shared.begin_shutdown();
                break;
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn submit(shared: &Arc<Shared>, client: &ClientHandle, spec: String, name: Option<String>) {
    let meta = match shared.exec.validate(&spec) {
        Ok(m) => m,
        Err(e) => {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("serve.jobs.rejected", 1);
            client.send(&Event::Rejected {
                reason: format!("invalid_spec: {e}"),
                name,
            });
            return;
        }
    };
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let display_name = name.unwrap_or_else(|| meta.name.clone());
    let job = Job {
        id,
        name: display_name.clone(),
        spec,
        meta,
        client: client.clone(),
        submitted: Instant::now(),
    };
    // Enqueue and acknowledge under the connection's writer lock, so a
    // worker's `Running` event cannot be written before our `Queued` ack
    // (the ordering contract in the protocol docs).
    client.locked(|slot| {
        let ack = match shared.queue.try_push(job) {
            Ok(position) => {
                shared.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("serve.jobs.submitted", 1);
                Event::Queued {
                    job: id,
                    name: display_name.clone(),
                    position,
                }
            }
            Err(_) => {
                shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("serve.jobs.rejected", 1);
                Event::Rejected {
                    reason: "queue_full".to_string(),
                    name: Some(display_name.clone()),
                }
            }
        };
        if let Some(stream) = slot.as_mut() {
            if write_frame(stream, &ack).is_err() {
                *slot = None;
            }
        }
    });
}

fn worker_loop(shared: &Arc<Shared>) {
    telemetry::set_track("serve-worker");
    while let Some(job) = shared.queue.pop() {
        run_job(shared, job);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_job(shared: &Arc<Shared>, job: Job) {
    let queue_wait_s = job.submitted.elapsed().as_secs_f64();
    job.client.send(&Event::Running {
        job: job.id,
        queue_wait_s,
    });
    telemetry::instant("serve", "job_start", None, vec![("job", job.id.into())]);

    // Resolve warm-start state through the table server. For a cold key
    // this worker may block here while another job explores the same key —
    // that is the single-flight contract.
    let lease = job
        .meta
        .uses_tables
        .then(|| shared.tables.lease(&job.meta.gpu, &job.meta.workload));
    let (warm, warm_models, leased_version, guard) = match lease {
        Some(Lease::Warm {
            table,
            models,
            version,
        }) => (Some(table), models, Some(version), None),
        Some(Lease::Explore(g)) => (None, StoredModels::new(), None, Some(g)),
        None => (None, StoredModels::new(), None, None),
    };
    let warm_start = warm.is_some();

    // Contain panics to the job: the chaos "kill a running job" vector.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        shared.exec.execute(&job.spec, warm.as_ref(), &warm_models)
    }));

    let finished = match outcome {
        Ok(Ok(out)) => {
            let table_version = match (guard, &out.learned) {
                (Some(g), Some(t)) if !t.is_empty() => {
                    Some(g.publish_with_models(t.clone(), out.models.clone()))
                }
                (Some(g), _) => {
                    // Online job that learned nothing — release the flight.
                    g.abort();
                    None
                }
                (None, _) => leased_version,
            };
            let row = SacctRow {
                job_id: job.id,
                job_name: job.name.clone(),
                elapsed_s: out.elapsed_s,
                consumed_energy_j: Some(out.energy_j),
                nodes: job.meta.nodes,
            };
            let sacct = sacct_row_text(&row);
            shared
                .ledger
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(row);
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("serve.jobs.completed", 1);
            Event::Finished {
                job: job.id,
                ok: true,
                error: None,
                warm_start,
                table_version,
                exploration_launches: out.exploration_launches,
                elapsed_s: out.elapsed_s,
                energy_j: out.energy_j,
                setup_energy_j: out.setup_energy_j,
                edp: out.edp,
                queue_wait_s,
                recovery: out.recovery,
                sacct,
                report: out.report,
            }
        }
        // In both failure arms an unconsumed `guard` drops at the end of
        // this function, aborting the flight so waiters re-race rather than
        // hang on a dead explorer.
        Ok(Err(e)) => failed_event(shared, &job, warm_start, queue_wait_s, e),
        Err(payload) => {
            let msg = format!("job panicked: {}", panic_message(payload));
            failed_event(shared, &job, warm_start, queue_wait_s, msg)
        }
    };
    job.client.send(&finished);
    telemetry::instant("serve", "job_end", None, vec![("job", job.id.into())]);
}

fn failed_event(
    shared: &Arc<Shared>,
    job: &Job,
    warm_start: bool,
    queue_wait_s: f64,
    error: String,
) -> Event {
    shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
    telemetry::counter_add("serve.jobs.failed", 1);
    Event::Finished {
        job: job.id,
        ok: false,
        error: Some(error),
        warm_start,
        table_version: None,
        exploration_launches: 0,
        elapsed_s: 0.0,
        energy_j: 0.0,
        setup_energy_j: 0.0,
        edp: 0.0,
        queue_wait_s,
        recovery: None,
        sacct: String::new(),
        report: None,
    }
}
