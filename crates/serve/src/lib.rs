//! # serve — a long-running experiment service
//!
//! The rest of the workspace runs experiments batch-style: `freqscale-run`
//! loads spec files, executes them, writes reports and exits. That model
//! breaks down exactly where the paper's methodology pays off most — a
//! shared cluster where many users submit jobs over time and the learned
//! per-kernel frequency tables should be *shared*, so the second submission
//! of a (GPU, workload) pair warm-starts from what the first one learned
//! instead of repeating the exploration.
//!
//! This crate is the serving layer:
//!
//! * [`protocol`] — a line-delimited JSON protocol over a Unix-domain
//!   socket. One request or event per line; specs travel as embedded JSON
//!   strings so a frame is always exactly one line. Std-only, like the
//!   `par`/`telemetry`/`faults` layers: no HTTP stack, no async runtime.
//! * [`queue`] — a bounded FIFO job queue with explicit backpressure: when
//!   it is full the daemon answers `rejected: queue_full` instead of
//!   buffering unboundedly or wedging the socket.
//! * [`tables`] — [`tables::TableServer`], the promotion of the on-disk
//!   `online::TableStore` into a shared in-process table server: an
//!   `RwLock`-guarded map keyed by (GPU, workload) with versioned entries,
//!   LRU eviction, write-behind persistence to the same JSON directory
//!   layout, and single-flight semantics — of K concurrent jobs with the
//!   same key, exactly one explores and the rest warm-start from its
//!   published table.
//! * [`daemon`] — the accept loop, worker pool and per-job lifecycle
//!   (`queued → running → finished`), generic over an [`daemon::Executor`]
//!   so the serving machinery carries no dependency on the experiment
//!   runner itself. Worker panics are contained per job: a killed job
//!   reports `ok: false` and the daemon keeps serving.
//! * [`client`] — the submission client used by `freqscale-submit` and the
//!   integration tests: submit specs, stream lifecycle events, collect one
//!   [`client::JobResult`] per spec.
//!
//! See DESIGN.md §"Experiment service" for the protocol grammar, the
//! queue/backpressure semantics, the table-server versioning argument and
//! the chaos model.

pub mod client;
pub mod daemon;
pub mod protocol;
pub mod queue;
pub mod tables;

pub use client::{submit_all, JobResult};
pub use daemon::{Daemon, DaemonHandle, Executor, JobMeta, JobOutcome, ServeConfig};
pub use protocol::{Event, Request, ServerStats, PROTOCOL_VERSION};
pub use queue::{BoundedQueue, PushError};
pub use tables::{Lease, TableServer, TableServerConfig, TableServerStats};
