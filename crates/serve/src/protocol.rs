//! Wire protocol: line-delimited JSON over a Unix-domain socket.
//!
//! Every frame is one JSON value on one line, terminated by `\n`.
//! Experiment specs — themselves multi-line JSON documents — travel as an
//! embedded JSON *string* inside [`Request::Submit`]; string escaping keeps
//! the frame on a single line, and the daemon hands the spec text to its
//! executor verbatim, so the protocol layer never needs to understand
//! experiment schemas.
//!
//! ## Ordering contract
//!
//! Per connection, the daemon answers each `Submit` with exactly one
//! `Queued` or `Rejected` event, *in submission order* (the submit path
//! holds the connection's writer lock across enqueue + acknowledgement, so
//! a fast worker's `Running` event cannot overtake the `Queued` ack).
//! `Running`/`Finished` events carry the job id and may interleave
//! arbitrarily with later acknowledgements; clients demultiplex by id.

use std::io::{self, BufRead, Write};

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use crate::tables::TableServerStats;

/// Bumped when a frame's shape changes incompatibly. Returned by `Pong`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Client → daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit one experiment. `spec` is the full spec-file JSON as a string;
    /// `name` is an optional display name (defaults to one derived from the
    /// spec by the executor).
    Submit {
        spec: String,
        #[serde(default)]
        name: Option<String>,
    },
    /// Liveness probe; answered with `Pong`.
    Ping,
    /// Snapshot of queue/table-server/accounting state; answered with
    /// `Stats`.
    Stats,
    /// Stop accepting work, drain the queue, exit. Answered with
    /// `ShuttingDown` before the daemon begins the drain.
    Shutdown,
}

/// Daemon → client. One line per event; `job` ids correlate streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// The submission was accepted and enqueued. `position` is the queue
    /// depth right after the push (1 = next to run).
    Queued {
        job: u64,
        name: String,
        position: usize,
    },
    /// The submission was not enqueued. `reason` is `queue_full` for
    /// backpressure, `invalid_spec: …` for a spec the executor refused, or
    /// `bad_request: …` for an unparsable frame.
    Rejected {
        reason: String,
        #[serde(default)]
        name: Option<String>,
    },
    /// A worker picked the job up. `queue_wait_s` is the wall-clock time it
    /// spent queued — the Slurm "queue wait" analogue for a served job.
    Running { job: u64, queue_wait_s: f64 },
    /// Terminal state, exactly once per queued job — also for jobs that
    /// panicked or failed (then `ok: false` with `error` set and the
    /// measurement fields zeroed).
    Finished {
        job: u64,
        ok: bool,
        #[serde(default)]
        error: Option<String>,
        /// Whether the job started from a served warm table.
        warm_start: bool,
        /// Version of the table it warm-started from, or the version it
        /// published after exploring.
        #[serde(default)]
        table_version: Option<u64>,
        /// Kernel launches the online tuner spent exploring (0 on a full
        /// warm start — the pin the e2e tests assert on).
        exploration_launches: u64,
        elapsed_s: f64,
        /// Whole-job energy, sacct's `ConsumedEnergy` view.
        energy_j: f64,
        /// Energy attributable to the setup phase (whole-job minus loop).
        setup_energy_j: f64,
        edp: f64,
        queue_wait_s: f64,
        /// Fault-recovery summary when the job ran under a fault profile.
        #[serde(default)]
        recovery: Option<String>,
        /// This job's accounting row in `sacct` pipe-text layout.
        sacct: String,
        /// Full experiment report JSON, when the job produced one.
        #[serde(default)]
        report: Option<String>,
    },
    /// Answer to `Ping`.
    Pong { version: u32 },
    /// Answer to `Stats`.
    Stats { stats: ServerStats },
    /// Answer to `Shutdown`, sent before the drain begins.
    ShuttingDown,
}

/// Daemon-wide counters, served by `Request::Stats`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    pub jobs_submitted: u64,
    pub jobs_rejected: u64,
    pub jobs_completed: u64,
    pub jobs_failed: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    pub tables: TableServerStats,
    /// Accounting ledger for every finished job, `sacct` pipe-text layout.
    pub sacct: String,
}

/// Serialize `msg` as one line and flush it.
pub fn write_frame<T: Serialize, W: Write>(w: &mut W, msg: &T) -> io::Result<()> {
    let line = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Read the next non-empty line and parse it. `Ok(None)` on clean EOF.
pub fn read_frame<T: DeserializeOwned, R: BufRead>(r: &mut R) -> io::Result<Option<T>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue;
        }
        return serde_json::from_str(line.trim())
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_one_line_each() {
        let reqs = vec![
            Request::Submit {
                spec: "{\n  \"steps\": 3\n}".to_string(),
                name: Some("job-a".to_string()),
            },
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            write_frame(&mut buf, r).unwrap();
        }
        // A spec containing newlines must still serialize to one line.
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), reqs.len());

        let mut rd = io::BufReader::new(&buf[..]);
        for want in &reqs {
            let got: Request = read_frame(&mut rd).unwrap().unwrap();
            assert_eq!(&got, want);
        }
        assert!(read_frame::<Request, _>(&mut rd).unwrap().is_none(), "EOF");
    }

    #[test]
    fn events_round_trip() {
        let evs = vec![
            Event::Queued {
                job: 7,
                name: "t".into(),
                position: 2,
            },
            Event::Rejected {
                reason: "queue_full".into(),
                name: Some("t".into()),
            },
            Event::Running {
                job: 7,
                queue_wait_s: 0.25,
            },
            Event::Finished {
                job: 7,
                ok: true,
                error: None,
                warm_start: true,
                table_version: Some(3),
                exploration_launches: 0,
                elapsed_s: 12.5,
                energy_j: 4200.0,
                setup_energy_j: 800.0,
                edp: 31337.0,
                queue_wait_s: 0.25,
                recovery: None,
                sacct: "7|t|12.50s|4200J|1".into(),
                report: None,
            },
            Event::Pong {
                version: PROTOCOL_VERSION,
            },
            Event::ShuttingDown,
        ];
        let mut buf = Vec::new();
        for e in &evs {
            write_frame(&mut buf, e).unwrap();
        }
        let mut rd = io::BufReader::new(&buf[..]);
        for want in &evs {
            let got: Event = read_frame(&mut rd).unwrap().unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn unparsable_frame_is_invalid_data_not_eof() {
        let buf = b"this is not json\n".to_vec();
        let mut rd = io::BufReader::new(&buf[..]);
        let err = read_frame::<Request, _>(&mut rd).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
