//! Bounded FIFO job queue with explicit backpressure.
//!
//! Submission never blocks: [`BoundedQueue::try_push`] fails fast with
//! [`PushError::Full`] when the queue is at capacity, which the daemon
//! turns into a `rejected: queue_full` response. Workers block in
//! [`BoundedQueue::pop`]; [`BoundedQueue::close`] wakes them all and lets
//! them drain whatever is still queued before they see `None` — a graceful
//! shutdown finishes accepted work but accepts no more.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused. The rejected item is handed back.
#[derive(Debug)]
pub enum PushError<T> {
    /// At capacity — the caller should report backpressure, not retry-spin.
    Full(T),
    /// The queue was closed; no further work is accepted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A Condvar-backed MPMC FIFO with a hard capacity.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// `capacity` must be at least 1.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue without blocking. On success returns the queue depth right
    /// after the push (1 = `item` runs next).
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Dequeue, blocking while the queue is empty and open. Returns `None`
    /// once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.nonempty.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stop accepting pushes and wake every blocked `pop`.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.closed = true;
        drop(s);
        self.nonempty.notify_all();
    }

    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_positions() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.try_push(3).unwrap(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3).unwrap(), 2);
    }

    #[test]
    fn close_drains_then_none() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        match q.try_push(12) {
            Err(PushError::Closed(12)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the workers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for w in workers {
            assert_eq!(w.join().unwrap(), None);
        }
    }
}
