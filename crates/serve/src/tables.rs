//! The shared in-process table server.
//!
//! Promotes the on-disk `online::TableStore` into a concurrent service:
//! an `RwLock`-guarded map of versioned learned tables keyed by
//! `(GPU, workload)`, with LRU eviction at a configurable capacity,
//! write-behind persistence to the store's JSON directory layout, and
//! single-flight semantics for cold keys.
//!
//! ## Single flight
//!
//! [`TableServer::lease`] is the only way a job obtains warm-start state.
//! For a cached key it returns [`Lease::Warm`] immediately. For a cold key
//! exactly one caller wins the flight and receives [`Lease::Explore`]; every
//! other concurrent caller for the same key *blocks inside `lease`* until
//! the winner publishes (then they return `Warm` with the new table) or
//! aborts (then they re-race for the flight). K queued jobs sharing a key
//! therefore cost one exploration, not K — and a crashed explorer can never
//! strand its waiters, because dropping an unused [`ExploreGuard`] (panic
//! unwinding included) aborts the flight and wakes them.
//!
//! ## Versioning
//!
//! Every publish moves the key's version forward. High-water marks live in
//! a side map that eviction never touches, and each version is persisted
//! inside the JSON entry (`StoredTable::version`), so a version observed by
//! any client is monotone per key even across LRU eviction, daemon restart
//! and write-behind races — the property the concurrency tests pin.
//!
//! ## Write-behind
//!
//! Publishes update the in-memory map synchronously and queue the disk
//! write to a persister thread, so the publish path never blocks on I/O.
//! [`TableServer::flush`] drains the persister (used at daemon shutdown and
//! by tests); writes go through `TableStore::save_versioned_with_models`,
//! which stages to a temp file and renames, so readers never observe a torn
//! entry.
//!
//! ## Models
//!
//! Entries carry the fitted per-kernel model coefficients alongside the
//! learned table ([`online::StoredModels`]). Predictive jobs publish them
//! via [`ExploreGuard::publish_with_models`]; warm leases hand them back so
//! a repeat predictive submission skips even the probe phase. Search-only
//! publishes never erase models an entry already holds — in memory or on
//! disk.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};

use online::{LearnedTable, StoredModels, TableStore};
use serde::{Deserialize, Serialize};

type Key = (String, String);

/// Configuration for [`TableServer`].
#[derive(Debug, Clone, Default)]
pub struct TableServerConfig {
    /// Directory for write-behind persistence (the `TableStore` layout).
    /// `None` keeps tables in memory only.
    pub dir: Option<std::path::PathBuf>,
    /// Maximum resident entries; least-recently-used entries are evicted
    /// past this. `0` means unbounded.
    pub capacity: usize,
}

/// Counter snapshot, exported through the protocol's `Stats` event.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableServerStats {
    /// Leases served from the in-memory map.
    pub hits: u64,
    /// Leases that found no resident entry.
    pub misses: u64,
    /// Misses satisfied from the on-disk store.
    pub disk_loads: u64,
    /// Entries dropped by LRU eviction.
    pub evictions: u64,
    /// Leases resolved to `Warm` (from memory, disk, or a publish).
    pub warm_starts: u64,
    /// Leases resolved to `Explore`.
    pub explorations: u64,
    /// Tables published by explorers.
    pub publishes: u64,
    /// Flights abandoned (explorer failed or learned nothing).
    pub aborts: u64,
    /// Times a lease blocked behind another key's in-flight exploration.
    pub waits: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Entry {
    table: LearnedTable,
    /// Fitted per-kernel model coefficients published alongside the table
    /// (empty for search-only jobs). Served to predictive warm starts so
    /// they skip even the probe phase.
    models: StoredModels,
    version: u64,
    /// Monotonic use tick for LRU; atomic so hits can touch it under the
    /// read lock.
    last_used: AtomicU64,
}

struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    disk_loads: AtomicU64,
    evictions: AtomicU64,
    warm_starts: AtomicU64,
    explorations: AtomicU64,
    publishes: AtomicU64,
    aborts: AtomicU64,
    waits: AtomicU64,
}

impl Counters {
    fn new() -> Self {
        Counters {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            explorations: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            waits: AtomicU64::new(0),
        }
    }
}

enum WriteMsg {
    Save {
        gpu: String,
        workload: String,
        table: LearnedTable,
        models: StoredModels,
        version: u64,
    },
    Flush(mpsc::Sender<()>),
}

struct Inner {
    map: RwLock<HashMap<Key, Entry>>,
    /// Per-key version high-water marks. Never evicted, so versions stay
    /// monotone even when the table entry itself is dropped and reloaded.
    versions: Mutex<HashMap<Key, u64>>,
    /// Keys with an exploration in flight.
    flight: Mutex<HashSet<Key>>,
    flight_changed: Condvar,
    store: Option<TableStore>,
    capacity: usize,
    tick: AtomicU64,
    counters: Counters,
    writer: Option<mpsc::Sender<WriteMsg>>,
}

/// What a job gets from [`TableServer::lease`].
pub enum Lease {
    /// Warm-start from this table (version included for reporting).
    /// `models` carries any fitted coefficients published with the entry —
    /// empty unless a predictive job explored this key.
    Warm {
        table: LearnedTable,
        models: StoredModels,
        version: u64,
    },
    /// This caller won the flight for a cold key: run the exploration, then
    /// [`ExploreGuard::publish`] the learned table (or drop/abort to release
    /// the waiters to re-race).
    Explore(ExploreGuard),
}

/// Exclusive right to explore one cold key. Dropping without publishing
/// aborts the flight — this is what keeps a panicked explorer from
/// stranding its waiters.
pub struct ExploreGuard {
    inner: Arc<Inner>,
    key: Key,
    done: bool,
}

impl ExploreGuard {
    /// Publish the learned table, waking all waiters with `Warm` leases.
    /// Returns the new version. Any models the entry already held (in
    /// memory or on disk) are preserved — a search-only publish must not
    /// discard a predictive run's coefficients.
    pub fn publish(self, table: LearnedTable) -> u64 {
        self.publish_with_models(table, StoredModels::new())
    }

    /// [`ExploreGuard::publish`], also publishing fitted per-kernel model
    /// coefficients so later predictive leases warm-start probe-free.
    pub fn publish_with_models(mut self, table: LearnedTable, models: StoredModels) -> u64 {
        self.done = true;
        self.inner.publish(&self.key, table, models)
    }

    /// Abandon the flight without publishing; waiters re-race for it.
    pub fn abort(mut self) {
        self.done = true;
        self.inner.abort(&self.key);
    }
}

impl Drop for ExploreGuard {
    fn drop(&mut self) {
        if !self.done {
            self.inner.abort(&self.key);
        }
    }
}

impl Inner {
    fn bump(&self, counter: &AtomicU64, name: &'static str) {
        counter.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add(name, 1);
    }

    /// Fast-path lookup; touches the LRU tick on hit.
    fn cached(&self, key: &Key) -> Option<(LearnedTable, StoredModels, u64)> {
        let map = self.map.read().unwrap_or_else(|e| e.into_inner());
        let e = map.get(key)?;
        e.last_used.store(
            self.tick.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        Some((e.table.clone(), e.models.clone(), e.version))
    }

    fn insert(&self, key: &Key, table: LearnedTable, models: StoredModels, version: u64) {
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        map.insert(
            key.clone(),
            Entry {
                table,
                models,
                version,
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed) + 1),
            },
        );
        if self.capacity > 0 {
            while map.len() > self.capacity {
                let victim = map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                    .map(|(k, _)| k.clone())
                    .expect("map is over capacity, so non-empty");
                map.remove(&victim);
                self.bump(&self.counters.evictions, "serve.tables.evictions");
            }
        }
    }

    /// Record `version` as the key's high-water mark if it moves forward.
    fn observe_version(&self, key: &Key, version: u64) {
        let mut v = self.versions.lock().unwrap_or_else(|e| e.into_inner());
        let slot = v.entry(key.clone()).or_insert(0);
        *slot = (*slot).max(version);
    }

    fn next_version(&self, key: &Key) -> u64 {
        let mut v = self.versions.lock().unwrap_or_else(|e| e.into_inner());
        let slot = v.entry(key.clone()).or_insert(0);
        *slot += 1;
        *slot
    }

    fn publish(self: &Arc<Self>, key: &Key, table: LearnedTable, models: StoredModels) -> u64 {
        // A model-less publish inherits whatever coefficients the resident
        // entry holds, so a search-only job refreshing a key never wipes a
        // predictive job's fit (the persister applies the same rule against
        // the on-disk entry for keys that were evicted in between).
        let models = if models.is_empty() {
            self.cached(key).map(|(_, m, _)| m).unwrap_or_default()
        } else {
            models
        };
        let version = self.next_version(key);
        self.insert(key, table.clone(), models.clone(), version);
        if let Some(tx) = &self.writer {
            let _ = tx.send(WriteMsg::Save {
                gpu: key.0.clone(),
                workload: key.1.clone(),
                table,
                models,
                version,
            });
        }
        self.bump(&self.counters.publishes, "serve.tables.publishes");
        self.release_flight(key);
        version
    }

    fn abort(self: &Arc<Self>, key: &Key) {
        self.bump(&self.counters.aborts, "serve.tables.aborts");
        self.release_flight(key);
    }

    fn release_flight(&self, key: &Key) {
        let mut fl = self.flight.lock().unwrap_or_else(|e| e.into_inner());
        fl.remove(key);
        drop(fl);
        self.flight_changed.notify_all();
    }
}

/// Shared handle to the table server; clones serve the same state.
#[derive(Clone)]
pub struct TableServer {
    inner: Arc<Inner>,
}

impl TableServer {
    pub fn new(cfg: TableServerConfig) -> std::io::Result<Self> {
        let store = match &cfg.dir {
            Some(dir) => Some(TableStore::open(dir).map_err(|e| {
                std::io::Error::other(format!("table store {}: {e}", dir.display()))
            })?),
            None => None,
        };
        // Write-behind persister: publishes enqueue, this thread writes.
        // The sender drops with `Inner`, which ends the thread.
        let writer = store.clone().map(|persist_store| {
            let (tx, rx) = mpsc::channel::<WriteMsg>();
            std::thread::Builder::new()
                .name("table-persist".into())
                .spawn(move || {
                    for msg in rx {
                        match msg {
                            WriteMsg::Save {
                                gpu,
                                workload,
                                table,
                                models,
                                version,
                            } => {
                                // Model-less saves keep whatever coefficients
                                // the on-disk entry already holds (the key may
                                // have been evicted from memory since its
                                // predictive publish).
                                let models = if models.is_empty() {
                                    persist_store
                                        .load_stored(&gpu, &workload)
                                        .ok()
                                        .flatten()
                                        .map(|s| s.models)
                                        .unwrap_or_default()
                                } else {
                                    models
                                };
                                if let Err(e) = persist_store.save_versioned_with_models(
                                    &gpu, &workload, &table, &models, version,
                                ) {
                                    eprintln!(
                                        "warning: table write-behind for ({gpu}, {workload}) \
                                         failed: {e}"
                                    );
                                }
                            }
                            WriteMsg::Flush(ack) => {
                                let _ = ack.send(());
                            }
                        }
                    }
                })
                .expect("spawn table persister");
            tx
        });
        Ok(TableServer {
            inner: Arc::new(Inner {
                map: RwLock::new(HashMap::new()),
                versions: Mutex::new(HashMap::new()),
                flight: Mutex::new(HashSet::new()),
                flight_changed: Condvar::new(),
                store,
                capacity: cfg.capacity,
                tick: AtomicU64::new(0),
                counters: Counters::new(),
                writer,
            }),
        })
    }

    /// Obtain warm-start state for `(gpu, workload)` — see the module docs
    /// for the single-flight contract. Blocks while another caller explores
    /// the same key.
    pub fn lease(&self, gpu: &str, workload: &str) -> Lease {
        let key: Key = (gpu.to_string(), workload.to_string());
        let inner = &self.inner;
        loop {
            if let Some((table, models, version)) = inner.cached(&key) {
                inner.bump(&inner.counters.hits, "serve.tables.hits");
                inner.bump(&inner.counters.warm_starts, "serve.tables.warm_starts");
                return Lease::Warm {
                    table,
                    models,
                    version,
                };
            }
            let mut fl = inner.flight.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the flight lock: a publisher inserts into the
            // map *before* releasing the flight, so "not cached and not in
            // flight" here really means cold.
            if let Some((table, models, version)) = inner.cached(&key) {
                drop(fl);
                inner.bump(&inner.counters.hits, "serve.tables.hits");
                inner.bump(&inner.counters.warm_starts, "serve.tables.warm_starts");
                return Lease::Warm {
                    table,
                    models,
                    version,
                };
            }
            if fl.contains(&key) {
                inner.bump(&inner.counters.waits, "serve.tables.waits");
                let _unused = inner
                    .flight_changed
                    .wait(fl)
                    .unwrap_or_else(|e| e.into_inner());
                continue;
            }
            fl.insert(key.clone());
            drop(fl);
            inner.bump(&inner.counters.misses, "serve.tables.misses");
            // Cold in memory — try the on-disk store before exploring. A
            // corrupt entry degrades to exploration (load_or_rebuild_stored
            // moves it aside), never a crash.
            if let Some(store) = &inner.store {
                if let Some(stored) = store.load_or_rebuild_stored(gpu, workload) {
                    inner.observe_version(&key, stored.version);
                    inner.insert(
                        &key,
                        stored.table.clone(),
                        stored.models.clone(),
                        stored.version,
                    );
                    inner.release_flight(&key);
                    inner.bump(&inner.counters.disk_loads, "serve.tables.disk_loads");
                    inner.bump(&inner.counters.warm_starts, "serve.tables.warm_starts");
                    return Lease::Warm {
                        table: stored.table,
                        models: stored.models,
                        version: stored.version,
                    };
                }
            }
            inner.bump(&inner.counters.explorations, "serve.tables.explorations");
            return Lease::Explore(ExploreGuard {
                inner: inner.clone(),
                key,
                done: false,
            });
        }
    }

    /// Non-blocking peek at a resident entry (no stats, no LRU touch).
    pub fn peek(&self, gpu: &str, workload: &str) -> Option<(LearnedTable, u64)> {
        let key: Key = (gpu.to_string(), workload.to_string());
        let map = self.inner.map.read().unwrap_or_else(|e| e.into_inner());
        map.get(&key).map(|e| (e.table.clone(), e.version))
    }

    /// Block until every queued write-behind save has hit disk.
    pub fn flush(&self) {
        if let Some(tx) = &self.inner.writer {
            let (ack_tx, ack_rx) = mpsc::channel();
            if tx.send(WriteMsg::Flush(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }

    pub fn stats(&self) -> TableServerStats {
        let c = &self.inner.counters;
        TableServerStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            disk_loads: c.disk_loads.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            warm_starts: c.warm_starts.load(Ordering::Relaxed),
            explorations: c.explorations.load(Ordering::Relaxed),
            publishes: c.publishes.load(Ordering::Relaxed),
            aborts: c.aborts.load(Ordering::Relaxed),
            waits: c.waits.load(Ordering::Relaxed),
            entries: self
                .inner
                .map
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn table(mhz: u32) -> LearnedTable {
        let mut t = LearnedTable::new();
        t.insert(sph::FuncId::XMass, archsim::MegaHertz(mhz));
        t
    }

    /// A fitted single-kernel model set, as a predictive job would publish.
    fn models() -> StoredModels {
        let samples = [
            (1005.0, 0.090),
            (1140.0, 0.082),
            (1275.0, 0.076),
            (1410.0, 0.071),
        ]
        .map(|(f, t)| model::Sample {
            f_core_mhz: f,
            f_mem_mhz: 1593.0,
            time_s: t,
            energy_j: t * (80.0 + 0.1 * f),
        });
        let voltage = model::VoltageParams {
            v_min: 0.70,
            v_max: 1.05,
            f_min_mhz: 210.0,
            f_max_mhz: 1410.0,
        };
        let m = model::KernelModel::fit(&samples, 1410.0, 1593.0, voltage).unwrap();
        let mut out = StoredModels::new();
        out.insert("XMass".to_string(), m);
        out
    }

    fn mem_server(capacity: usize) -> TableServer {
        TableServer::new(TableServerConfig {
            dir: None,
            capacity,
        })
        .unwrap()
    }

    #[test]
    fn cold_key_explores_then_serves_warm() {
        let srv = mem_server(0);
        let lease = srv.lease("A100", "turb");
        let guard = match lease {
            Lease::Explore(g) => g,
            Lease::Warm { .. } => panic!("cold key must explore"),
        };
        assert_eq!(guard.publish(table(1410)), 1);
        match srv.lease("A100", "turb") {
            Lease::Warm {
                table: t,
                models,
                version,
            } => {
                assert_eq!(version, 1);
                assert_eq!(t, table(1410));
                assert!(models.is_empty(), "plain publish carries no models");
            }
            Lease::Explore(_) => panic!("published key must be warm"),
        }
        let s = srv.stats();
        assert_eq!(s.explorations, 1);
        assert_eq!(s.warm_starts, 1);
        assert_eq!(s.publishes, 1);
    }

    #[test]
    fn k_concurrent_leases_single_flight() {
        let srv = mem_server(0);
        let k = 4;
        let barrier = Arc::new(Barrier::new(k));
        let handles: Vec<_> = (0..k)
            .map(|_| {
                let srv = srv.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    match srv.lease("A100", "turb") {
                        Lease::Explore(g) => {
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            g.publish(table(1200));
                            true
                        }
                        Lease::Warm {
                            table: t, version, ..
                        } => {
                            assert_eq!(t, table(1200));
                            assert_eq!(version, 1);
                            false
                        }
                    }
                })
            })
            .collect();
        let explorers: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(explorers, 1, "exactly one of K concurrent leases explores");
        let s = srv.stats();
        assert_eq!(s.explorations, 1);
        assert_eq!(s.warm_starts, 3);
    }

    #[test]
    fn dropped_guard_releases_waiters_to_rerace() {
        let srv = mem_server(0);
        let g = match srv.lease("A100", "turb") {
            Lease::Explore(g) => g,
            _ => panic!("cold"),
        };
        let waiter = {
            let srv = srv.clone();
            std::thread::spawn(move || srv.lease("A100", "turb"))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(g); // explorer "dies" without publishing
        match waiter.join().unwrap() {
            Lease::Explore(g2) => g2.abort(), // waiter re-races and wins the flight
            Lease::Warm { .. } => panic!("nothing was published"),
        }
        assert_eq!(srv.stats().aborts, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_only_past_capacity() {
        let srv = mem_server(2);
        for (i, key) in ["a", "b"].iter().enumerate() {
            match srv.lease("G", key) {
                Lease::Explore(g) => {
                    g.publish(table(1000 + i as u32));
                }
                _ => panic!("cold"),
            }
        }
        // Touch "a" so "b" is the LRU victim.
        assert!(matches!(srv.lease("G", "a"), Lease::Warm { .. }));
        match srv.lease("G", "c") {
            Lease::Explore(g) => {
                g.publish(table(1500));
            }
            _ => panic!("cold"),
        }
        assert_eq!(srv.stats().entries, 2);
        assert_eq!(srv.stats().evictions, 1);
        assert!(srv.peek("G", "a").is_some(), "recently used entry survives");
        assert!(srv.peek("G", "b").is_none(), "LRU entry evicted");
        assert!(srv.peek("G", "c").is_some());
    }

    #[test]
    fn versions_stay_monotone_across_eviction_with_store() {
        let dir = std::env::temp_dir().join(format!("serve-tables-mono-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let srv = TableServer::new(TableServerConfig {
            dir: Some(dir.clone()),
            capacity: 1,
        })
        .unwrap();
        match srv.lease("G", "a") {
            Lease::Explore(g) => {
                assert_eq!(g.publish(table(1000)), 1);
            }
            _ => panic!("cold"),
        }
        // Publishing "b" evicts "a" (capacity 1).
        match srv.lease("G", "b") {
            Lease::Explore(g) => {
                g.publish(table(1100));
            }
            _ => panic!("cold"),
        }
        assert!(srv.peek("G", "a").is_none(), "a evicted");
        srv.flush();
        // "a" reloads from disk at its persisted version, not version 0.
        match srv.lease("G", "a") {
            Lease::Warm { version, .. } => assert_eq!(version, 1),
            Lease::Explore(_) => panic!("disk should warm-start"),
        }
        // And republishing moves past the high-water mark.
        match srv.lease("G", "c") {
            Lease::Explore(g) => {
                g.publish(table(1200));
            }
            _ => panic!("cold"),
        }
        srv.flush();
        assert!(srv.peek("G", "a").is_none(), "a evicted again");
        match srv.lease("G", "a") {
            Lease::Warm { version, .. } => assert_eq!(version, 1),
            Lease::Explore(_) => panic!("disk entry persists"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_behind_persists_via_store_layout() {
        let dir = std::env::temp_dir().join(format!("serve-tables-wb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let srv = TableServer::new(TableServerConfig {
            dir: Some(dir.clone()),
            capacity: 0,
        })
        .unwrap();
        match srv.lease("A100", "turb") {
            Lease::Explore(g) => {
                g.publish(table(1410));
            }
            _ => panic!("cold"),
        }
        srv.flush();
        // Readable through a plain TableStore — same JSON layout.
        let store = TableStore::open(&dir).unwrap();
        let stored = store.load_stored("A100", "turb").unwrap().unwrap();
        assert_eq!(stored.table, table(1410));
        assert_eq!(stored.version, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_degrades_to_exploration() {
        let dir = std::env::temp_dir().join(format!("serve-tables-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("A100__turb.json"), "{definitely not json").unwrap();
        let srv = TableServer::new(TableServerConfig {
            dir: Some(dir.clone()),
            capacity: 0,
        })
        .unwrap();
        match srv.lease("A100", "turb") {
            Lease::Explore(g) => {
                g.publish(table(900));
            }
            Lease::Warm { .. } => panic!("corrupt entry must not warm-start"),
        }
        assert!(
            dir.join("A100__turb.json.corrupt").exists(),
            "bad bytes moved aside"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn published_models_round_trip_through_memory_and_disk() {
        let dir = std::env::temp_dir().join(format!("serve-tables-models-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let srv = TableServer::new(TableServerConfig {
            dir: Some(dir.clone()),
            capacity: 1,
        })
        .unwrap();
        match srv.lease("A100", "turb") {
            Lease::Explore(g) => {
                g.publish_with_models(table(1410), models());
            }
            _ => panic!("cold"),
        }
        // Resident entry serves the models back.
        match srv.lease("A100", "turb") {
            Lease::Warm { models: m, .. } => assert_eq!(m, models()),
            Lease::Explore(_) => panic!("published key must be warm"),
        }
        // Evict via capacity 1, then reload: models come back from disk,
        // readable by a plain TableStore in the batch-runner layout.
        match srv.lease("A100", "other") {
            Lease::Explore(g) => {
                g.publish(table(900));
            }
            _ => panic!("cold"),
        }
        srv.flush();
        assert!(srv.peek("A100", "turb").is_none(), "evicted");
        let store = TableStore::open(&dir).unwrap();
        let stored = store.load_stored("A100", "turb").unwrap().unwrap();
        assert_eq!(stored.models, models());
        match srv.lease("A100", "turb") {
            Lease::Warm { models: m, .. } => assert_eq!(m, models(), "disk warm start has models"),
            Lease::Explore(_) => panic!("disk should warm-start"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn search_only_publish_preserves_existing_models() {
        let dir = std::env::temp_dir().join(format!("serve-tables-keep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let srv = TableServer::new(TableServerConfig {
            dir: Some(dir.clone()),
            capacity: 0,
        })
        .unwrap();
        // Seed the store the way a batch predictive run would.
        let store = TableStore::open(&dir).unwrap();
        store
            .save_versioned_with_models("A100", "turb", &table(1410), &models(), 1)
            .unwrap();
        // First lease loads models from disk; pretend the entry goes stale
        // and an online (search-only) job republishes the key.
        match srv.lease("A100", "turb") {
            Lease::Warm { models: m, .. } => assert_eq!(m, models()),
            Lease::Explore(_) => panic!("disk should warm-start"),
        }
        srv.inner.publish(
            &("A100".to_string(), "turb".to_string()),
            table(1200),
            StoredModels::new(),
        );
        srv.flush();
        // Neither the resident entry nor the disk entry lost the fit.
        match srv.lease("A100", "turb") {
            Lease::Warm {
                table: t,
                models: m,
                ..
            } => {
                assert_eq!(t, table(1200), "table refreshed");
                assert_eq!(m, models(), "models inherited across the publish");
            }
            Lease::Explore(_) => panic!("warm"),
        }
        let stored = store.load_stored("A100", "turb").unwrap().unwrap();
        assert_eq!(stored.table, table(1200));
        assert_eq!(stored.models, models());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
