//! Daemon lifecycle tests against a mock executor: backpressure, crash
//! containment, client disconnects and single-flight table serving — the
//! serving machinery proven without running any real experiment.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

use serde::{Deserialize, Serialize};
use serve::daemon::{Daemon, Executor, JobMeta, JobOutcome, ServeConfig};
use serve::protocol::{Event, Request};
use serve::tables::TableServerConfig;
use serve::{client, PROTOCOL_VERSION};

/// The mock's spec language.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MockSpec {
    /// Table key (workload half; GPU is fixed).
    key: String,
    /// "ok" | "fail" | "panic".
    mode: String,
    /// Participate in table serving.
    #[serde(default)]
    uses_tables: bool,
    /// Wait for the shared gate before finishing (lets tests hold jobs
    /// running deterministically).
    #[serde(default)]
    gated: bool,
}

fn spec(key: &str, mode: &str, uses_tables: bool, gated: bool) -> String {
    serde_json::to_string(&MockSpec {
        key: key.to_string(),
        mode: mode.to_string(),
        uses_tables,
        gated,
    })
    .unwrap()
}

#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut g = self.open.lock().unwrap();
        while !*g {
            g = self.cv.wait(g).unwrap();
        }
    }
}

struct MockExec {
    gate: Arc<Gate>,
}

impl Executor for MockExec {
    fn validate(&self, spec_json: &str) -> Result<JobMeta, String> {
        let spec: MockSpec = serde_json::from_str(spec_json).map_err(|e| e.to_string())?;
        if !matches!(spec.mode.as_str(), "ok" | "fail" | "panic") {
            return Err(format!("unknown mode {:?}", spec.mode));
        }
        Ok(JobMeta {
            name: format!("mock-{}", spec.key),
            gpu: "MockGPU".to_string(),
            workload: spec.key,
            uses_tables: spec.uses_tables,
            nodes: 1,
        })
    }

    fn execute(
        &self,
        spec_json: &str,
        warm: Option<&online::LearnedTable>,
        _warm_models: &online::StoredModels,
    ) -> Result<JobOutcome, String> {
        let spec: MockSpec = serde_json::from_str(spec_json).unwrap();
        if spec.gated {
            self.gate.wait();
        }
        match spec.mode.as_str() {
            "panic" => panic!("chaos kill for {}", spec.key),
            "fail" => Err(format!("mock failure for {}", spec.key)),
            _ => {
                let explored = warm.is_none() && spec.uses_tables;
                let learned = explored.then(|| {
                    let mut t = online::LearnedTable::new();
                    t.insert(sph::FuncId::XMass, archsim::MegaHertz(1200));
                    t
                });
                Ok(JobOutcome {
                    learned,
                    exploration_launches: if explored { 5 } else { 0 },
                    elapsed_s: 1.0,
                    energy_j: 100.0,
                    setup_energy_j: 10.0,
                    edp: 90.0,
                    recovery: None,
                    report: None,
                    ..Default::default()
                })
            }
        }
    }
}

fn sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("serve-test-{tag}-{}.sock", std::process::id()))
}

fn start(tag: &str, queue: usize, workers: usize) -> (serve::DaemonHandle, Arc<Gate>, PathBuf) {
    let gate = Arc::new(Gate::default());
    let path = sock(tag);
    let cfg = ServeConfig {
        socket: path.clone(),
        queue_capacity: queue,
        workers,
        tables: TableServerConfig {
            dir: None,
            capacity: 0,
        },
    };
    let handle = Daemon::start(cfg, MockExec { gate: gate.clone() }).unwrap();
    (handle, gate, path)
}

#[test]
fn submit_runs_and_streams_lifecycle() {
    let (handle, gate, path) = start("basic", 8, 2);
    gate.open();
    let results = client::submit_all(
        &path,
        &[("job-a".to_string(), spec("k", "ok", false, false))],
    )
    .unwrap();
    assert_eq!(results.len(), 1);
    let r = &results[0];
    assert!(r.ok, "job succeeds: {r:?}");
    assert_eq!(r.name, "job-a");
    assert!(r.job.is_some());
    assert!(r.sacct.contains("job-a"), "sacct row rides the event");
    assert!(client::ping(&path).unwrap());
    handle.stop();
    handle.join();
}

#[test]
fn queue_overflow_rejects_cleanly_without_wedging() {
    // One worker, capacity 2: hold the first job running, fill the queue,
    // and the next submission must bounce with `queue_full`.
    let (handle, gate, path) = start("overflow", 2, 1);
    let mut w = UnixStream::connect(&path).unwrap();
    let mut r = BufReader::new(w.try_clone().unwrap());
    let send = |w: &mut UnixStream, name: &str, gated: bool| {
        let req = Request::Submit {
            spec: spec("k", "ok", false, gated),
            name: Some(name.to_string()),
        };
        let line = serde_json::to_string(&req).unwrap();
        writeln!(w, "{line}").unwrap();
    };
    let read = |r: &mut BufReader<UnixStream>| -> Event {
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        serde_json::from_str(line.trim()).unwrap()
    };

    send(&mut w, "j1", true);
    assert!(matches!(read(&mut r), Event::Queued { .. }));
    // Wait until the single worker has actually picked j1 up, so the queue
    // is empty and the fill below is deterministic.
    assert!(matches!(read(&mut r), Event::Running { .. }));
    send(&mut w, "j2", false);
    assert!(matches!(read(&mut r), Event::Queued { position: 1, .. }));
    send(&mut w, "j3", false);
    assert!(matches!(read(&mut r), Event::Queued { position: 2, .. }));
    // Queue now at capacity; backpressure must answer, not block or drop.
    send(&mut w, "j4", false);
    match read(&mut r) {
        Event::Rejected { reason, name } => {
            assert_eq!(reason, "queue_full");
            assert_eq!(name.as_deref(), Some("j4"));
        }
        other => panic!("expected queue_full rejection, got {other:?}"),
    }

    // Release the held job; everything accepted still completes.
    gate.open();
    let mut finished = 0;
    while finished < 3 {
        if let Event::Finished { ok, .. } = read(&mut r) {
            assert!(ok);
            finished += 1;
        }
    }
    // The daemon is not wedged: a fresh submission completes normally.
    let results =
        client::submit_all(&path, &[("j5".to_string(), spec("k", "ok", false, false))]).unwrap();
    assert!(results[0].ok);
    handle.stop();
    handle.join();
}

#[test]
fn panicking_job_fails_alone_daemon_survives() {
    let (handle, gate, path) = start("panic", 8, 2);
    gate.open();
    let results = client::submit_all(
        &path,
        &[
            ("boom".to_string(), spec("k", "panic", false, false)),
            ("calm".to_string(), spec("k", "ok", false, false)),
        ],
    )
    .unwrap();
    let boom = &results[0];
    assert!(!boom.ok);
    assert!(
        boom.error.as_deref().unwrap_or("").contains("chaos kill"),
        "panic message surfaces: {boom:?}"
    );
    assert!(results[1].ok, "sibling job unaffected");
    // Still serving after the kill.
    assert!(client::ping(&path).unwrap());
    let results = client::submit_all(
        &path,
        &[("after".to_string(), spec("k", "ok", false, false))],
    )
    .unwrap();
    assert!(results[0].ok);
    let stats = client::stats(&path).unwrap();
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs_completed, 2);
    handle.stop();
    handle.join();
}

#[test]
fn panicking_explorer_releases_single_flight_waiters() {
    let (handle, gate, path) = start("panic-explore", 8, 2);
    gate.open();
    // First job explores the key and dies mid-exploration; the second must
    // re-race, explore itself, and succeed — not hang on the dead flight.
    let results = client::submit_all(
        &path,
        &[
            ("boom".to_string(), spec("kx", "panic", true, false)),
            ("calm".to_string(), spec("kx", "ok", true, false)),
        ],
    )
    .unwrap();
    assert!(!results[0].ok);
    assert!(results[1].ok);
    assert_eq!(
        results[1].exploration_launches, 5,
        "nothing was published, so the survivor explores"
    );
    handle.stop();
    handle.join();
}

#[test]
fn client_disconnect_mid_stream_leaves_daemon_serving() {
    let (handle, gate, path) = start("disconnect", 8, 1);
    {
        let mut w = UnixStream::connect(&path).unwrap();
        let mut r = BufReader::new(w.try_clone().unwrap());
        let req = Request::Submit {
            spec: spec("k", "ok", false, true),
            name: Some("orphan".to_string()),
        };
        writeln!(w, "{}", serde_json::to_string(&req).unwrap()).unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("Queued"));
        // Drop the connection while the job is queued/running.
    }
    gate.open();
    // The orphaned job still completes and the daemon still serves.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let stats = client::stats(&path).unwrap();
        if stats.jobs_completed >= 1 {
            assert!(stats.sacct.contains("orphan"), "orphan reached the ledger");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned job never completed"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let results = client::submit_all(
        &path,
        &[("next".to_string(), spec("k", "ok", false, false))],
    )
    .unwrap();
    assert!(results[0].ok);
    handle.stop();
    handle.join();
}

#[test]
fn k_submissions_one_key_single_flight_warm_start() {
    let (handle, gate, path) = start("singleflight", 8, 4);
    gate.open();
    let specs: Vec<(String, String)> = (0..4)
        .map(|i| (format!("same-{i}"), spec("shared", "ok", true, false)))
        .collect();
    let results = client::submit_all(&path, &specs).unwrap();
    assert!(results.iter().all(|r| r.ok), "{results:?}");
    let explored: Vec<_> = results
        .iter()
        .filter(|r| r.exploration_launches > 0)
        .collect();
    let warm: Vec<_> = results.iter().filter(|r| r.warm_start).collect();
    assert_eq!(explored.len(), 1, "exactly one of K explores: {results:?}");
    assert_eq!(warm.len(), 3, "the other K-1 warm-start: {results:?}");
    assert!(
        warm.iter().all(|r| r.exploration_launches == 0),
        "warm starts spend zero exploration launches"
    );
    assert!(
        warm.iter().all(|r| r.table_version == Some(1)),
        "waiters see the explorer's published version: {results:?}"
    );
    let stats = handle.stats();
    assert_eq!(stats.tables.explorations, 1);
    assert_eq!(stats.tables.publishes, 1);
    assert_eq!(stats.tables.warm_starts, 3);
    handle.stop();
    handle.join();
}

#[test]
fn invalid_spec_rejected_before_queueing() {
    let (handle, gate, path) = start("invalid", 8, 1);
    gate.open();
    let results = client::submit_all(
        &path,
        &[
            ("bad-json".to_string(), "{not a spec".to_string()),
            ("bad-mode".to_string(), spec("k", "explode", false, false)),
            ("good".to_string(), spec("k", "ok", false, false)),
        ],
    )
    .unwrap();
    assert!(results[0]
        .rejected
        .as_deref()
        .unwrap_or("")
        .starts_with("invalid_spec:"));
    assert!(results[1]
        .rejected
        .as_deref()
        .unwrap_or("")
        .contains("unknown mode"));
    assert!(results[2].ok, "valid spec unaffected by rejected siblings");
    handle.stop();
    handle.join();
}

#[test]
fn shutdown_request_drains_and_exits() {
    let (handle, gate, path) = start("shutdown", 8, 2);
    gate.open();
    let results = client::submit_all(
        &path,
        &[("last".to_string(), spec("k", "ok", false, false))],
    )
    .unwrap();
    assert!(results[0].ok);
    assert!(client::ping(&path).unwrap());
    client::shutdown(&path).unwrap();
    // join() returning proves the accept loop and workers exited.
    handle.join();
    assert!(!path.exists(), "socket file removed on shutdown");
    let _ = PROTOCOL_VERSION;
}
