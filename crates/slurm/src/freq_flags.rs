//! `sbatch`/`srun` frequency flags: `--gpu-freq` and `--cpu-freq` (§II-B).
//!
//! "CPU and GPU frequencies can be controlled by Slurm and be set to a
//! specific value or a range of values. For example, the
//! `--cpu-freq=1800000` flag would set the CPU frequency to 1.8 GHz, and the
//! `--gpu-freq=900` flag would set the GPU frequency to 900 MHz. This is
//! possible under the condition that the supercomputing centre is allowing
//! users to change default values."

use archsim::MegaHertz;
use serde::{Deserialize, Serialize};

/// Parsed frequency requests for one job submission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreqFlags {
    /// `--gpu-freq=<MHz>` (Slurm takes the value in megahertz).
    pub gpu_freq: Option<MegaHertz>,
    /// `--cpu-freq=<kHz>` (Slurm takes the value in kilohertz).
    pub cpu_freq_khz: Option<u64>,
}

/// Errors parsing or validating frequency flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FreqFlagError {
    /// Unparseable flag syntax.
    Malformed(String),
    /// The centre disallows user frequency selection
    /// (`SlurmctldParameters` policy).
    DisallowedByCentre,
}

impl std::fmt::Display for FreqFlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreqFlagError::Malformed(s) => write!(f, "malformed frequency flag: {s:?}"),
            FreqFlagError::DisallowedByCentre => {
                write!(f, "centre policy disallows user frequency selection")
            }
        }
    }
}

impl std::error::Error for FreqFlagError {}

impl FreqFlags {
    /// Parse from submission arguments; unrelated arguments are ignored.
    ///
    /// Accepted forms: `--gpu-freq=900`, `--cpu-freq=1800000`. (Slurm also
    /// accepts symbolic values like `low`/`medium`/`high`; `high` and `low`
    /// are supported here, mapped at application time.)
    pub fn parse(args: &[&str]) -> Result<Self, FreqFlagError> {
        let mut flags = FreqFlags::default();
        for arg in args {
            if let Some(v) = arg.strip_prefix("--gpu-freq=") {
                flags.gpu_freq = Some(match v {
                    "high" => MegaHertz(u32::MAX), // resolved against the device later
                    "low" => MegaHertz(0),
                    _ => MegaHertz(
                        v.parse::<u32>()
                            .map_err(|_| FreqFlagError::Malformed(arg.to_string()))?,
                    ),
                });
            } else if let Some(v) = arg.strip_prefix("--cpu-freq=") {
                flags.cpu_freq_khz = Some(
                    v.parse::<u64>()
                        .map_err(|_| FreqFlagError::Malformed(arg.to_string()))?,
                );
            }
        }
        Ok(flags)
    }

    /// Resolve symbolic gpu-freq values against a device's clock ladder.
    pub fn resolve_gpu_freq(&self, table: &archsim::ClockTable) -> Option<MegaHertz> {
        self.gpu_freq.map(|f| {
            if f == MegaHertz(u32::MAX) {
                table.max()
            } else if f == MegaHertz(0) {
                table.min()
            } else {
                table.nearest(f)
            }
        })
    }

    /// True if the submission asked for any non-default frequency.
    pub fn any(&self) -> bool {
        self.gpu_freq.is_some() || self.cpu_freq_khz.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::ClockTable;

    #[test]
    fn parses_paper_examples() {
        let f = FreqFlags::parse(&["--cpu-freq=1800000", "--gpu-freq=900", "-n", "32"]).unwrap();
        assert_eq!(f.cpu_freq_khz, Some(1_800_000));
        assert_eq!(f.gpu_freq, Some(MegaHertz(900)));
        assert!(f.any());
    }

    #[test]
    fn ignores_unrelated_args_and_defaults_to_none() {
        let f = FreqFlags::parse(&["-N", "4", "--time=01:00"]).unwrap();
        assert_eq!(f, FreqFlags::default());
        assert!(!f.any());
    }

    #[test]
    fn rejects_malformed_values() {
        assert!(matches!(
            FreqFlags::parse(&["--gpu-freq=fast"]),
            Err(FreqFlagError::Malformed(_))
        ));
        assert!(matches!(
            FreqFlags::parse(&["--cpu-freq=1.8GHz"]),
            Err(FreqFlagError::Malformed(_))
        ));
    }

    #[test]
    fn symbolic_values_resolve_against_the_ladder() {
        let table = ClockTable::a100();
        let high = FreqFlags::parse(&["--gpu-freq=high"]).unwrap();
        assert_eq!(high.resolve_gpu_freq(&table), Some(MegaHertz(1410)));
        let low = FreqFlags::parse(&["--gpu-freq=low"]).unwrap();
        assert_eq!(low.resolve_gpu_freq(&table), Some(MegaHertz(210)));
        // Numeric values snap to the nearest supported step.
        let v = FreqFlags::parse(&["--gpu-freq=1001"]).unwrap();
        assert_eq!(v.resolve_gpu_freq(&table), Some(MegaHertz(1005)));
        // No request -> no resolution.
        assert_eq!(FreqFlags::default().resolve_gpu_freq(&table), None);
    }
}
