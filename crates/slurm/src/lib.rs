//! # slurm-sim — Slurm-like job energy accounting
//!
//! Reproduces the accounting path §II-A describes: with `energy` in
//! `AccountingStorageTRES`, Slurm records each job's consumed energy from the
//! node-level monitoring backend (`ipmi`, `pm_counters` or `rapl`) and
//! reports it through `sacct --format=...,ConsumedEnergy`.
//!
//! Two properties matter for the paper's Fig. 3 validation:
//!
//! * Slurm measures from **job start** — allocation, application setup, data
//!   staging — while PMT instrumentation starts at the simulation's
//!   time-stepping loop. The difference is the setup energy.
//! * Slurm reads the same out-of-band counters as `pm_counters`, i.e. the
//!   10 Hz quantized view.

pub mod freq_flags;

use archsim::{Joules, SimDuration, SimInstant};
use pm_counters::PmCounters;
use serde::{Deserialize, Serialize};

pub use freq_flags::{FreqFlagError, FreqFlags};

/// Which node-level backend the energy plugin reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnergyBackend {
    /// HPE/Cray pm_counters (LUMI-G, CSCS-A100).
    PmCounters,
    /// Generic BMC via IPMI (same data path here, coarser in reality).
    Ipmi,
    /// CPU-only RAPL (no GPU attribution; not used by the paper's systems).
    Rapl,
}

/// Cluster-side accounting configuration (`slurm.conf`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccountingConfig {
    /// The `AccountingStorageTRES` list.
    pub tres: Vec<String>,
    pub backend: EnergyBackend,
}

impl Default for AccountingConfig {
    fn default() -> Self {
        AccountingConfig {
            tres: vec![
                "cpu".into(),
                "mem".into(),
                "energy".into(),
                "gres/gpu".into(),
            ],
            backend: EnergyBackend::PmCounters,
        }
    }
}

impl EnergyBackend {
    /// Native sampling period of the backend: Cray OOB collects at 10 Hz,
    /// generic BMCs via IPMI typically at ~1 Hz, RAPL is effectively
    /// continuous (msr reads on demand).
    pub fn scan_period(self) -> SimDuration {
        match self {
            EnergyBackend::PmCounters => SimDuration::from_millis(100),
            EnergyBackend::Ipmi => SimDuration::from_secs(1),
            EnergyBackend::Rapl => SimDuration::from_millis(10),
        }
    }
}

impl AccountingConfig {
    /// Whether energy accounting is enabled (the `energy` TRES present).
    pub fn energy_enabled(&self) -> bool {
        self.tres.iter().any(|t| t == "energy")
    }

    /// Attach a node collector configured for this backend's native rate.
    pub fn attach_collector(&self, node: &archsim::Node) -> PmCounters {
        PmCounters::attach(node).with_scan_period(self.backend.scan_period())
    }
}

/// A job's lifecycle timestamps (virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobTimes {
    /// Submission/allocation instant (jobs here start at the epoch).
    pub submit: SimInstant,
    /// When the application's main loop started (end of setup).
    pub loop_start: SimInstant,
    /// Job end.
    pub end: SimInstant,
}

impl JobTimes {
    pub fn elapsed(&self) -> SimDuration {
        self.end - self.submit
    }

    pub fn setup(&self) -> SimDuration {
        self.loop_start - self.submit
    }
}

/// One accounted job.
pub struct Job {
    pub id: u64,
    pub name: String,
    pub times: JobTimes,
    /// One collector per allocated node.
    counters: Vec<PmCounters>,
}

impl Job {
    /// Register a finished job over the nodes it ran on.
    pub fn new(
        id: u64,
        name: impl Into<String>,
        times: JobTimes,
        counters: Vec<PmCounters>,
    ) -> Self {
        assert!(times.loop_start >= times.submit);
        assert!(times.end >= times.loop_start);
        Job {
            id,
            name: name.into(),
            times,
            counters,
        }
    }

    /// Total job energy as Slurm accounts it: every allocated node, from
    /// submission to end, through the 10 Hz counters.
    pub fn consumed_energy(&self) -> Joules {
        self.counters
            .iter()
            .map(|pm| pm.node_energy(self.times.end) - pm.node_energy(self.times.submit))
            .sum()
    }

    /// Energy attributable to the setup phase only (what PMT's
    /// loop-scoped measurement does not see).
    pub fn setup_energy(&self) -> Joules {
        self.counters
            .iter()
            .map(|pm| pm.node_energy(self.times.loop_start) - pm.node_energy(self.times.submit))
            .sum()
    }

    pub fn node_count(&self) -> usize {
        self.counters.len()
    }
}

/// The accounting database (`sacct`'s source).
#[derive(Default)]
pub struct Slurm {
    config: AccountingConfig,
    jobs: Vec<Job>,
}

/// One `sacct` output row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SacctRow {
    pub job_id: u64,
    pub job_name: String,
    /// Wall-clock elapsed, seconds.
    pub elapsed_s: f64,
    /// `ConsumedEnergy` in joules; `None` when the TRES list lacks `energy`.
    pub consumed_energy_j: Option<f64>,
    pub nodes: usize,
}

impl Slurm {
    pub fn new(config: AccountingConfig) -> Self {
        Slurm {
            config,
            jobs: Vec::new(),
        }
    }

    pub fn config(&self) -> &AccountingConfig {
        &self.config
    }

    /// Record a completed job; returns its id.
    pub fn record(
        &mut self,
        name: impl Into<String>,
        times: JobTimes,
        counters: Vec<PmCounters>,
    ) -> u64 {
        let id = self.jobs.len() as u64 + 1;
        self.jobs.push(Job::new(id, name, times, counters));
        id
    }

    pub fn job(&self, id: u64) -> Option<&Job> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// `sacct --format=JobID,JobName,Elapsed,ConsumedEnergy` equivalent.
    pub fn sacct(&self) -> Vec<SacctRow> {
        self.jobs
            .iter()
            .map(|j| SacctRow {
                job_id: j.id,
                job_name: j.name.clone(),
                elapsed_s: j.times.elapsed().as_secs_f64(),
                consumed_energy_j: self.config.energy_enabled().then(|| j.consumed_energy().0),
                nodes: j.node_count(),
            })
            .collect()
    }

    /// Render `sacct` rows in the pipe-separated text layout admins see.
    pub fn sacct_text(&self) -> String {
        let mut out = String::from("JobID|JobName|Elapsed|ConsumedEnergy|NNodes\n");
        for row in self.sacct() {
            let energy = row
                .consumed_energy_j
                .map_or("--".to_string(), |j| format!("{:.0}J", j));
            out.push_str(&format!(
                "{}|{}|{:.2}s|{}|{}\n",
                row.job_id, row.job_name, row.elapsed_s, energy, row.nodes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::{cscs_a100, Node};

    fn t(ms: u64) -> SimInstant {
        SimInstant::from_nanos(ms * 1_000_000)
    }

    fn one_node_job(end_ms: u64, loop_start_ms: u64) -> (Node, JobTimes) {
        let node = Node::new(cscs_a100().node);
        node.settle_until(t(end_ms), 0.2, 0.3);
        (
            node,
            JobTimes {
                submit: SimInstant::ZERO,
                loop_start: t(loop_start_ms),
                end: t(end_ms),
            },
        )
    }

    #[test]
    fn consumed_energy_covers_full_job_including_setup() {
        let (node, times) = one_node_job(3000, 1000);
        let job = Job::new(1, "sph", times, vec![PmCounters::attach(&node)]);
        let total = job.consumed_energy();
        let setup = job.setup_energy();
        assert!(total.0 > 0.0);
        assert!(setup.0 > 0.0);
        assert!(setup.0 < total.0);
        // Steady load: setup energy is ~ its time share.
        let share = setup.0 / total.0;
        assert!((share - 1.0 / 3.0).abs() < 0.02, "setup share {share}");
    }

    #[test]
    fn sacct_reports_energy_only_when_tres_enabled() {
        let (node, times) = one_node_job(1000, 100);
        let mut with = Slurm::new(AccountingConfig::default());
        with.record("job-a", times, vec![PmCounters::attach(&node)]);
        assert!(with.sacct()[0].consumed_energy_j.is_some());

        let (node2, times2) = one_node_job(1000, 100);
        let mut without = Slurm::new(AccountingConfig {
            tres: vec!["cpu".into(), "mem".into()],
            backend: EnergyBackend::PmCounters,
        });
        without.record("job-b", times2, vec![PmCounters::attach(&node2)]);
        assert_eq!(without.sacct()[0].consumed_energy_j, None);
        assert!(without.sacct_text().contains("--"));
    }

    #[test]
    fn multi_node_jobs_sum_over_nodes() {
        let (n1, times) = one_node_job(2000, 200);
        let (n2, _) = one_node_job(2000, 200);
        let job = Job::new(
            1,
            "multi",
            times,
            vec![PmCounters::attach(&n1), PmCounters::attach(&n2)],
        );
        let single = Job::new(2, "single", times, vec![PmCounters::attach(&n1)]);
        assert!((job.consumed_energy().0 - 2.0 * single.consumed_energy().0).abs() < 1e-6);
        assert_eq!(job.node_count(), 2);
    }

    #[test]
    fn sacct_text_format() {
        let (node, times) = one_node_job(1500, 100);
        let mut slurm = Slurm::new(AccountingConfig::default());
        let id = slurm.record("sph-exa", times, vec![PmCounters::attach(&node)]);
        let text = slurm.sacct_text();
        assert!(text.starts_with("JobID|JobName|Elapsed|ConsumedEnergy|NNodes"));
        assert!(text.contains(&format!("{id}|sph-exa|1.50s|")));
        assert!(text.trim_end().ends_with("|1"));
        assert!(slurm.job(id).is_some());
        assert!(slurm.job(99).is_none());
    }

    #[test]
    fn ipmi_backend_quantizes_coarser_than_pm_counters() {
        let node = Node::new(cscs_a100().node);
        node.settle_until(t(3700), 0.2, 0.3); // 3.7 s of load
        let times = JobTimes {
            submit: SimInstant::ZERO,
            loop_start: t(500),
            end: t(3700),
        };
        let cray_cfg = AccountingConfig::default();
        let ipmi_cfg = AccountingConfig {
            backend: EnergyBackend::Ipmi,
            ..Default::default()
        };
        let cray = Job::new(1, "cray", times, vec![cray_cfg.attach_collector(&node)]);
        let ipmi = Job::new(2, "ipmi", times, vec![ipmi_cfg.attach_collector(&node)]);
        // IPMI's 1 Hz window loses the 3.0-3.7 s tail entirely.
        assert!(ipmi.consumed_energy().0 < cray.consumed_energy().0);
        // But on whole-second boundaries they agree for steady load.
        let aligned = JobTimes {
            submit: SimInstant::ZERO,
            loop_start: t(1000),
            end: t(3000),
        };
        let c2 = Job::new(3, "c", aligned, vec![cray_cfg.attach_collector(&node)]);
        let i2 = Job::new(4, "i", aligned, vec![ipmi_cfg.attach_collector(&node)]);
        let rel = (c2.consumed_energy().0 - i2.consumed_energy().0).abs() / c2.consumed_energy().0;
        assert!(rel < 1e-9, "steady aligned load must agree: {rel}");
    }

    #[test]
    #[should_panic]
    fn job_times_must_be_ordered() {
        let (node, _) = one_node_job(1000, 100);
        let bad = JobTimes {
            submit: t(500),
            loop_start: t(100),
            end: t(1000),
        };
        let _ = Job::new(1, "bad", bad, vec![PmCounters::attach(&node)]);
    }
}
