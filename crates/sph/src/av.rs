//! `AVSwitches`: time-dependent artificial-viscosity switches
//! (Morris & Monaghan style, as used in SPH-EXA).
//!
//! Alpha grows where the flow compresses (shock indicator `-div v`) and
//! decays on a crossing-time scale elsewhere, keeping the scheme dissipative
//! only where it must be.

use crate::particles::Particles;

/// Floor of the viscosity switch.
pub const ALPHA_MIN: f64 = 0.05;
/// Ceiling of the viscosity switch.
pub const ALPHA_MAX: f64 = 1.0;
/// Decay time in units of the local crossing time `h / c`.
pub const DECAY_CROSSINGS: f64 = 5.0;

/// Advance the switches by `dt` using the current `divv` indicator.
pub fn av_switches(parts: &mut Particles, dt: f64) {
    for i in 0..parts.n_local {
        let c = parts.c[i].max(1e-12);
        let h = parts.h[i];
        // Source: active only in compression.
        let s = (-parts.divv[i]).max(0.0);
        // Target value saturates as compression dominates the sound crossing.
        let target = ALPHA_MAX * s / (s + c / h);
        let tau = DECAY_CROSSINGS * h / c;
        let decayed = parts.alpha[i] + (ALPHA_MIN - parts.alpha[i]) * (dt / tau).min(1.0);
        parts.alpha[i] = decayed.max(target).clamp(ALPHA_MIN, ALPHA_MAX);
    }
}

/// Monaghan artificial-viscosity term `Pi_ij` for one interacting pair.
/// Zero for receding pairs. `mu` is `h v.r / (r^2 + eps h^2)`.
#[allow(clippy::too_many_arguments)]
pub fn viscosity_pi(alpha_ij: f64, h_ij: f64, c_ij: f64, rho_ij: f64, vdotr: f64, r2: f64) -> f64 {
    if vdotr >= 0.0 {
        return 0.0;
    }
    const BETA_FACTOR: f64 = 2.0;
    const EPS: f64 = 0.01;
    let mu = h_ij * vdotr / (r2 + EPS * h_ij * h_ij);
    (-alpha_ij * c_ij * mu + BETA_FACTOR * alpha_ij * mu * mu) / rho_ij
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_particle(divv: f64, alpha: f64) -> Particles {
        let mut p = Particles::new();
        p.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        p.c[0] = 1.0;
        p.divv[0] = divv;
        p.alpha[0] = alpha;
        p
    }

    #[test]
    fn compression_raises_alpha() {
        let mut p = one_particle(-50.0, ALPHA_MIN);
        av_switches(&mut p, 1e-3);
        assert!(
            p.alpha[0] > 0.5,
            "strong compression should boost alpha: {}",
            p.alpha[0]
        );
        assert!(p.alpha[0] <= ALPHA_MAX);
    }

    #[test]
    fn expansion_lets_alpha_decay_to_floor() {
        let mut p = one_particle(10.0, 0.8);
        for _ in 0..200 {
            av_switches(&mut p, 0.05);
        }
        assert!(
            (p.alpha[0] - ALPHA_MIN).abs() < 1e-6,
            "alpha {}",
            p.alpha[0]
        );
    }

    #[test]
    fn alpha_never_leaves_bounds() {
        for divv in [-1e6, -1.0, 0.0, 1.0, 1e6] {
            let mut p = one_particle(divv, 0.3);
            for _ in 0..50 {
                av_switches(&mut p, 0.01);
                assert!(p.alpha[0] >= ALPHA_MIN - 1e-12);
                assert!(p.alpha[0] <= ALPHA_MAX + 1e-12);
            }
        }
    }

    #[test]
    fn viscosity_only_for_approaching_pairs() {
        // Receding: vdotr > 0 -> no viscosity.
        assert_eq!(viscosity_pi(1.0, 0.1, 1.0, 1.0, 0.5, 0.01), 0.0);
        // Approaching: positive dissipation.
        let pi = viscosity_pi(1.0, 0.1, 1.0, 1.0, -0.5, 0.01);
        assert!(pi > 0.0, "Pi {pi} must be dissipative");
    }

    #[test]
    fn viscosity_scales_with_alpha() {
        let lo = viscosity_pi(0.1, 0.1, 1.0, 1.0, -0.5, 0.01);
        let hi = viscosity_pi(1.0, 0.1, 1.0, 1.0, -0.5, 0.01);
        assert!(hi > lo * 5.0);
    }
}
