//! `EnergyConservation`: global energy and momentum bookkeeping.

use serde::{Deserialize, Serialize};

use crate::particles::Particles;

/// Per-rank (local) conserved-quantity sums; the global values come from a
/// collective sum over ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBudget {
    pub kinetic: f64,
    pub internal: f64,
    /// Gravitational potential energy (0 for the turbulence workload).
    pub potential: f64,
    pub px: f64,
    pub py: f64,
    pub pz: f64,
}

impl EnergyBudget {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.internal + self.potential
    }

    /// Element-wise sum (for reductions over ranks).
    pub fn merged(&self, other: &EnergyBudget) -> EnergyBudget {
        EnergyBudget {
            kinetic: self.kinetic + other.kinetic,
            internal: self.internal + other.internal,
            potential: self.potential + other.potential,
            px: self.px + other.px,
            py: self.py + other.py,
            pz: self.pz + other.pz,
        }
    }

    /// Pack as 6 f64 for the rank runtime.
    pub fn to_slice(&self) -> [f64; 6] {
        [
            self.kinetic,
            self.internal,
            self.potential,
            self.px,
            self.py,
            self.pz,
        ]
    }

    pub fn from_slice(v: &[f64]) -> EnergyBudget {
        assert_eq!(v.len(), 6);
        EnergyBudget {
            kinetic: v[0],
            internal: v[1],
            potential: v[2],
            px: v[3],
            py: v[4],
            pz: v[5],
        }
    }
}

/// Local sums over owned particles. `potential` is the rank's share of the
/// gravitational energy (pre-halved by the caller if summing pairwise).
pub fn local_budget(parts: &Particles, potential: f64) -> EnergyBudget {
    let mut b = EnergyBudget {
        potential,
        ..Default::default()
    };
    for i in 0..parts.n_local {
        let m = parts.m[i];
        let v2 = parts.vx[i].powi(2) + parts.vy[i].powi(2) + parts.vz[i].powi(2);
        b.kinetic += 0.5 * m * v2;
        b.internal += m * parts.u[i];
        b.px += m * parts.vx[i];
        b.py += m * parts.vy[i];
        b.pz += m * parts.vz[i];
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sums_kinetic_internal_momentum() {
        let mut p = Particles::new();
        p.push(0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.1, 1.5); // ke = 6, u*m = 4.5
        p.push(0.0, 0.0, 0.0, 0.0, -1.0, 0.0, 2.0, 0.1, 0.5); // ke = 1, u*m = 1
        let b = local_budget(&p, -2.0);
        assert!((b.kinetic - 7.0).abs() < 1e-12);
        assert!((b.internal - 5.5).abs() < 1e-12);
        assert_eq!(b.potential, -2.0);
        assert!((b.total() - 10.5).abs() < 1e-12);
        assert!((b.px - 6.0).abs() < 1e-12);
        assert!((b.py + 2.0).abs() < 1e-12);
        assert_eq!(b.pz, 0.0);
    }

    #[test]
    fn merge_and_slice_roundtrip() {
        let a = EnergyBudget {
            kinetic: 1.0,
            internal: 2.0,
            potential: -3.0,
            px: 0.1,
            py: 0.2,
            pz: 0.3,
        };
        let b = EnergyBudget {
            kinetic: 4.0,
            internal: 5.0,
            potential: -6.0,
            px: 1.0,
            py: 2.0,
            pz: 3.0,
        };
        let m = a.merged(&b);
        assert_eq!(m.kinetic, 5.0);
        assert_eq!(m.potential, -9.0);
        let rt = EnergyBudget::from_slice(&m.to_slice());
        assert_eq!(rt, m);
    }

    #[test]
    fn halos_are_excluded_from_budget() {
        let mut p = Particles::new();
        p.push(0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        let src = p.clone();
        p.append_halos(&src, &[0]);
        let b = local_budget(&p, 0.0);
        assert!(
            (b.kinetic - 0.5).abs() < 1e-12,
            "only the owned particle counts"
        );
    }
}
