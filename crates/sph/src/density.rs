//! Density summation with grad-h correction (`Density` /
//! `NormalizationGradh` in the SPH-EXA function set), plus the `XMass`
//! generalized volume elements.

use cornerstone::{Box3, NeighborList, NeighborSearch};

use crate::kernels::{Kernel, RowKernel};
use crate::lanes;
use crate::particles::Particles;

/// `XMass`: estimate generalized volume elements from the previous
/// iteration's densities. First iteration (rho = 0) falls back to the mass
/// itself, matching a uniform-volume bootstrap.
pub fn xmass(parts: &mut Particles) {
    for i in 0..parts.len() {
        parts.xmass[i] = if parts.rho[i] > 0.0 {
            parts.m[i] / parts.rho[i]
        } else {
            parts.m[i]
        };
    }
}

/// `Density` + `NormalizationGradh`: SPH density summation
/// `rho_i = sum_j m_j W(r_ij, h_i)` (self-contribution included) and the
/// grad-h correction factor `Omega_i = 1 + (h_i / 3 rho_i) sum_j m_j dW/dh`.
///
/// Densities are computed for owned particles only; halos carry the values
/// their owner computed (exchanged by `DomainDecompAndSync`).
///
/// Parallelized by gather: each index reads any neighbor but accumulates
/// only its own sums, in cell-list order — so results are bit-identical at
/// any thread count. Generic over the neighbor source: the direct grid walk
/// and the shared per-step [`cornerstone::NeighborList`] visit candidates in
/// the same order, so both paths produce the same bits.
pub fn density_gradh<N: NeighborSearch + Sync>(
    parts: &mut Particles,
    nb: &N,
    bbox: &Box3,
    kernel: Kernel,
) {
    let p = &*parts;
    let sums: Vec<(f64, f64)> = if let Some(nl) = nb.as_list() {
        par::par_map(p.n_local, |i| density_row_blocked(p, nl, i, kernel))
    } else {
        par::par_map(p.n_local, |i| {
            let hi = p.h[i];
            let radius = kernel.support(hi);
            let mut rho_i = 0.0;
            let mut dh_i = 0.0;
            nb.for_neighbors_of(i, radius, &p.x, &p.y, &p.z, bbox, |j, d2| {
                let (w, dw_dh) = kernel.w_and_dw_dh(d2.sqrt(), hi);
                rho_i += p.m[j] * w;
                dh_i += p.m[j] * dw_dh;
            });
            (rho_i, dh_i)
        })
    };
    for (i, (rho_i, dh_i)) in sums.into_iter().enumerate() {
        parts.rho[i] = rho_i;
        // Omega = 1 + h/(3 rho) * sum m dW/dh; guard against degenerate rho.
        parts.gradh[i] = if rho_i > 0.0 {
            (1.0 + parts.h[i] / (3.0 * rho_i) * dh_i).max(0.1)
        } else {
            1.0
        };
    }
}

/// Density + grad-h over an explicit row subset of the shared CSR list —
/// the interior/boundary split the halo-overlap step schedule uses.
///
/// Each listed row computes exactly what [`density_gradh`] computes for it
/// (same per-row gather, same in-row order), and rows never read the
/// fields this sweep writes (`rho`, `gradh`) of *other* particles — only
/// `m`/positions — so running the owned range as two disjoint subsets in
/// any order produces bit-identical results to the single full sweep.
pub fn density_gradh_rows(
    parts: &mut Particles,
    nl: &NeighborList,
    kernel: Kernel,
    rows: &[usize],
) {
    let p = &*parts;
    let sums: Vec<(f64, f64)> =
        par::par_map(rows.len(), |k| density_row_blocked(p, nl, rows[k], kernel));
    for (k, (rho_i, dh_i)) in sums.into_iter().enumerate() {
        let i = rows[k];
        parts.rho[i] = rho_i;
        parts.gradh[i] = if rho_i > 0.0 {
            (1.0 + parts.h[i] / (3.0 * rho_i) * dh_i).max(0.1)
        } else {
            1.0
        };
    }
}

/// Blocked density row: filter-free. The raw CSR row (recorded at the
/// step's per-pair superset radius) is consumed whole — distances, then
/// the fused `(W, dW/dh)` over every candidate with the hoisted-`h`
/// branch-free [`RowKernel`], then the `m_j`-scaled accumulation in visit
/// order. No compaction pass, no data-dependent branches anywhere in the
/// row. (Compact-first was measured slower on both bench workloads even at
/// the adaptive list's ~36% pass rate: the in-order 5-channel push loop is
/// branchy per lane, and its mispredicts cost more than the extra
/// branch-free kernel evaluations save.)
///
/// Bit-identical to the scalar callback under default features even though
/// the scalar path only folds the candidates within `support(h_i)`:
///
/// * a dropped candidate has `d2 > (2h)²`, so its correctly-rounded
///   `r = sqrt(d2) >= 2h` and `q = r/h >= 2.0` — the kernel's strict
///   `q < 2` selects produce exactly `w = +0.0` and `dw = +0.0`, hence
///   `dwdh = -(3·0 + r·0)/h = -0.0`; its terms are `m_j · (±0.0) = ±0.0`;
/// * a running fold that starts at `+0.0` can never hold `-0.0` (`-0.0`
///   only arises from `-0.0 + -0.0`, and round-to-nearest cancellation
///   yields `+0.0`), and adding `±0.0` to a non-`-0.0` accumulator never
///   changes its bits — so interleaving the zero terms leaves every
///   genuine partial sum, and the final bits, identical.
///
/// Under `fast-math` the accumulator is lane-partial and `Sinc5` uses the
/// polynomial sinc (the zero terms are still value-neutral).
fn density_row_blocked(p: &Particles, nl: &NeighborList, i: usize, kernel: Kernel) -> (f64, f64) {
    let hi = p.h[i];
    let rk = RowKernel::new(kernel, hi);
    let (jj, dxs, dys, dzs) = nl.row_deltas(i);
    lanes::with_scratch(|s| {
        let lanes::RowScratch { r, w, aux, .. } = s;
        lanes::dist_into(dxs, dys, dzs, r);
        let [dwdh, ..] = aux;
        rk.w_and_dw_dh_into(r, w, dwdh);
        let mut rho = lanes::Acc::default();
        let mut dh = lanes::Acc::default();
        for k in 0..jj.len() {
            let mj = p.m[jj[k] as usize];
            rho.add(k, mj * w[k]);
            dh.add(k, mj * dwdh[k]);
        }
        (rho.value(), dh.value())
    })
}

/// Count neighbors within the kernel support of each owned particle
/// (`FindNeighbors`). Returned counts exclude the particle itself.
pub fn neighbor_counts<N: NeighborSearch + Sync>(
    parts: &Particles,
    nb: &N,
    bbox: &Box3,
    kernel: Kernel,
) -> Vec<usize> {
    if let Some(nl) = nb.as_list() {
        // The row always contains exactly one self-candidate (the grid
        // stores each particle once) and it always passes the filter
        // (d2 = 0), so "neighbors excluding self" is the lane count - 1.
        return par::par_map(parts.n_local, |i| {
            nl.count_within(i, kernel.support(parts.h[i])) - 1
        });
    }
    let (x, y, z) = (&parts.x, &parts.y, &parts.z);
    par::par_map(parts.n_local, |i| {
        let mut n = 0usize;
        nb.for_neighbors_of(i, kernel.support(parts.h[i]), x, y, z, bbox, |j, _| {
            if j != i {
                n += 1;
            }
        });
        n
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornerstone::CellList;

    /// A uniform lattice of particles in a periodic unit box.
    fn lattice(n_side: usize) -> (Particles, Box3) {
        let bbox = Box3::unit_periodic();
        let mut parts = Particles::new();
        let n3 = (n_side * n_side * n_side) as f64;
        let spacing = 1.0 / n_side as f64;
        let m = 1.0 / n3; // total mass 1 -> mean density 1
        let h = 1.3 * spacing;
        for ix in 0..n_side {
            for iy in 0..n_side {
                for iz in 0..n_side {
                    parts.push(
                        (ix as f64 + 0.5) * spacing,
                        (iy as f64 + 0.5) * spacing,
                        (iz as f64 + 0.5) * spacing,
                        0.0,
                        0.0,
                        0.0,
                        m,
                        h,
                        1.0,
                    );
                }
            }
        }
        (parts, bbox)
    }

    #[test]
    fn uniform_lattice_recovers_unit_density() {
        for kernel in [Kernel::CubicSpline, Kernel::WendlandC6] {
            let (mut parts, bbox) = lattice(8);
            let grid = CellList::build(
                &parts.x,
                &parts.y,
                &parts.z,
                &bbox,
                kernel.support(parts.h[0]),
            );
            density_gradh(&mut parts, &grid, &bbox, kernel);
            for &r in &parts.rho {
                assert!((r - 1.0).abs() < 0.05, "{kernel:?}: density {r} far from 1");
            }
        }
    }

    #[test]
    fn gradh_near_unity_on_uniform_field() {
        let (mut parts, bbox) = lattice(8);
        let kernel = Kernel::CubicSpline;
        let grid = CellList::build(
            &parts.x,
            &parts.y,
            &parts.z,
            &bbox,
            kernel.support(parts.h[0]),
        );
        density_gradh(&mut parts, &grid, &bbox, kernel);
        for &o in &parts.gradh {
            // On a uniform field dh contributions nearly cancel against the
            // scaling identity; Omega stays close to 1.
            assert!((o - 1.0).abs() < 0.15, "Omega {o} far from 1");
        }
    }

    #[test]
    fn neighbor_counts_reasonable_for_h_choice() {
        let (parts, bbox) = lattice(8);
        let kernel = Kernel::CubicSpline;
        let grid = CellList::build(
            &parts.x,
            &parts.y,
            &parts.z,
            &bbox,
            kernel.support(parts.h[0]),
        );
        let counts = neighbor_counts(&parts, &grid, &bbox, kernel);
        // Support 2h = 2.6 spacings -> ~60-80 neighbors on a cubic lattice.
        for &c in &counts {
            assert!((40..120).contains(&c), "neighbor count {c} unexpected");
        }
    }

    #[test]
    fn xmass_uses_previous_density() {
        let (mut parts, _bbox) = lattice(4);
        xmass(&mut parts);
        assert_eq!(parts.xmass, parts.m, "bootstrap falls back to mass");
        parts.rho.iter_mut().for_each(|r| *r = 2.0);
        xmass(&mut parts);
        for i in 0..parts.len() {
            assert!((parts.xmass[i] - parts.m[i] / 2.0).abs() < 1e-15);
        }
    }

    #[test]
    fn isolated_particle_density_is_self_contribution() {
        let bbox = Box3::cube(0.0, 1.0, false);
        let mut parts = Particles::new();
        parts.push(0.5, 0.5, 0.5, 0.0, 0.0, 0.0, 2.0, 0.05, 1.0);
        let kernel = Kernel::CubicSpline;
        let grid = CellList::build(&parts.x, &parts.y, &parts.z, &bbox, 0.1);
        density_gradh(&mut parts, &grid, &bbox, kernel);
        let expect = 2.0 * kernel.w(0.0, 0.05);
        assert!((parts.rho[0] - expect).abs() < 1e-12);
    }
}
