//! Equations of state.

use serde::{Deserialize, Serialize};

use crate::particles::Particles;

/// Equation of state choices used by the two paper workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Eos {
    /// Ideal gas `p = (gamma - 1) rho u` (Evrard collapse, gamma = 5/3).
    IdealGas { gamma: f64 },
    /// Isothermal `p = c_s^2 rho` (subsonic turbulence driving regime).
    Isothermal { sound_speed: f64 },
}

impl Eos {
    /// Standard monatomic ideal gas.
    pub fn ideal_monatomic() -> Self {
        Eos::IdealGas { gamma: 5.0 / 3.0 }
    }

    /// Pressure for one particle.
    pub fn pressure(&self, rho: f64, u: f64) -> f64 {
        match *self {
            Eos::IdealGas { gamma } => (gamma - 1.0) * rho * u,
            Eos::Isothermal { sound_speed } => sound_speed * sound_speed * rho,
        }
    }

    /// Sound speed for one particle.
    pub fn sound_speed(&self, rho: f64, u: f64) -> f64 {
        match *self {
            Eos::IdealGas { gamma } => (gamma * (gamma - 1.0) * u).max(0.0).sqrt(),
            Eos::Isothermal { sound_speed } => {
                let _ = (rho, u);
                sound_speed
            }
        }
    }

    /// The `EquationOfState` step: fill `p` and `c` for every particle
    /// (owned and halo — halos need pressure for the force loop).
    pub fn apply(&self, parts: &mut Particles) {
        self.apply_range(parts, 0, parts.len());
    }

    /// Fill `p` and `c` for an index range. The halo-overlap schedule runs
    /// the owned range in the `EquationOfState` phase and the halo tail when
    /// deferred halo fields arrive; the per-particle math is identical, so
    /// the split composes bit-identically with [`Eos::apply`].
    pub fn apply_range(&self, parts: &mut Particles, start: usize, end: usize) {
        for i in start..end {
            parts.p[i] = self.pressure(parts.rho[i], parts.u[i]);
            parts.c[i] = self.sound_speed(parts.rho[i], parts.u[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_gas_pressure_and_sound_speed() {
        let eos = Eos::ideal_monatomic();
        let p = eos.pressure(2.0, 1.5);
        assert!((p - (2.0 / 3.0) * 2.0 * 1.5).abs() < 1e-12);
        let c = eos.sound_speed(2.0, 1.5);
        assert!((c * c - 5.0 / 3.0 * 2.0 / 3.0 * 1.5).abs() < 1e-12);
    }

    #[test]
    fn isothermal_ignores_internal_energy() {
        let eos = Eos::Isothermal { sound_speed: 0.5 };
        assert_eq!(eos.sound_speed(1.0, 9.9), 0.5);
        assert!((eos.pressure(4.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_fills_all_particles_including_halos() {
        let mut parts = Particles::new();
        parts.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        parts.push(1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 2.0);
        let src = parts.clone();
        parts.append_halos(&src, &[0]);
        parts.rho.iter_mut().for_each(|r| *r = 1.0);
        Eos::ideal_monatomic().apply(&mut parts);
        assert!(parts.p.iter().all(|&p| p > 0.0));
        assert!(parts.c.iter().all(|&c| c > 0.0));
        assert_eq!(parts.p.len(), 3);
    }

    #[test]
    fn cold_gas_has_zero_sound_speed_not_nan() {
        let eos = Eos::ideal_monatomic();
        assert_eq!(eos.sound_speed(1.0, 0.0), 0.0);
    }
}
