//! The instrumented SPH-EXA function set and their paper-scale GPU workload
//! models.
//!
//! The physics in this crate runs at laptop scale; the *energy* experiments
//! run at paper scale (80–150 million particles per GPU). Each function
//! therefore carries a workload model — FLOPs and DRAM bytes per particle,
//! power activity factors, launch structure — that [`archsim`] turns into
//! virtual time and energy. Coefficients are calibrated so the per-kernel
//! frequency sensitivity matches Fig. 8: `MomentumEnergy` and
//! `IADVelocityDivCurl` are compute-bound (>20 % slow-down at 1005 MHz),
//! `XMass`/`NormalizationGradh` are bandwidth-bound (nearly flat).

use serde::{Deserialize, Serialize};

use archsim::{KernelWorkload, SimDuration};

/// Every function of the time-stepping loop, in call order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuncId {
    DomainDecompAndSync,
    FindNeighbors,
    XMass,
    NormalizationGradh,
    EquationOfState,
    IADVelocityDivCurl,
    AVSwitches,
    MomentumEnergy,
    Gravity,
    Timestep,
    UpdateQuantities,
    EnergyConservation,
}

impl FuncId {
    /// All functions in call order (gravity included; turbulence runs skip
    /// it).
    pub const ALL: [FuncId; 12] = [
        FuncId::DomainDecompAndSync,
        FuncId::FindNeighbors,
        FuncId::XMass,
        FuncId::NormalizationGradh,
        FuncId::EquationOfState,
        FuncId::IADVelocityDivCurl,
        FuncId::AVSwitches,
        FuncId::MomentumEnergy,
        FuncId::Gravity,
        FuncId::Timestep,
        FuncId::UpdateQuantities,
        FuncId::EnergyConservation,
    ];

    /// Function name as reported in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            FuncId::DomainDecompAndSync => "DomainDecompAndSync",
            FuncId::FindNeighbors => "FindNeighbors",
            FuncId::XMass => "XMass",
            FuncId::NormalizationGradh => "NormalizationGradh",
            FuncId::EquationOfState => "EquationOfState",
            FuncId::IADVelocityDivCurl => "IADVelocityDivCurl",
            FuncId::AVSwitches => "AVSwitches",
            FuncId::MomentumEnergy => "MomentumEnergy",
            FuncId::Gravity => "Gravity",
            FuncId::Timestep => "Timestep",
            FuncId::UpdateQuantities => "UpdateQuantities",
            FuncId::EnergyConservation => "EnergyConservation",
        }
    }

    /// Parse a paper-style function name.
    pub fn from_name(name: &str) -> Option<FuncId> {
        FuncId::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Per-particle workload coefficients:
    /// `(flops_pp, bytes_pp, compute_activity, memory_activity, launches)`.
    ///
    /// The flop/byte ratios set each kernel's roofline position on an A100
    /// (9.7 TFLOP/s FP64, 2 TB/s): MomentumEnergy ~5.9 F/B (beta~0.55),
    /// XMass ~0.65 F/B (beta~0.12), etc.
    fn coefficients(self) -> (f64, f64, f64, f64, u32) {
        match self {
            // Many lightweight key/sort/exchange kernels (§IV-E).
            FuncId::DomainDecompAndSync => (120.0, 600.0, 0.15, 0.40, 300),
            FuncId::FindNeighbors => (1870.0, 900.0, 0.45, 0.85, 4),
            FuncId::XMass => (330.0, 500.0, 0.30, 0.85, 2),
            FuncId::NormalizationGradh => (1130.0, 700.0, 0.45, 0.85, 2),
            FuncId::EquationOfState => (54.0, 100.0, 0.20, 0.90, 1),
            FuncId::IADVelocityDivCurl => (4080.0, 560.0, 0.88, 0.60, 2),
            FuncId::AVSwitches => (1045.0, 400.0, 0.50, 0.70, 1),
            FuncId::MomentumEnergy => (4800.0, 810.0, 0.95, 0.55, 2),
            FuncId::Gravity => (5820.0, 300.0, 0.92, 0.50, 3),
            FuncId::Timestep => (10.0, 50.0, 0.30, 0.80, 2),
            FuncId::UpdateQuantities => (30.0, 300.0, 0.25, 0.95, 1),
            FuncId::EnergyConservation => (20.0, 80.0, 0.30, 0.80, 2),
        }
    }

    /// Paper-scale GPU workload of this function for `n_particles` particles
    /// resident on one GPU.
    pub fn workload(self, n_particles: f64) -> KernelWorkload {
        let (flops_pp, bytes_pp, ca, ma, launches) = self.coefficients();
        KernelWorkload::new(self.name(), flops_pp * n_particles, bytes_pp * n_particles)
            .with_launches(launches)
            .with_activity(ca, ma)
            .with_parallelism(n_particles)
    }

    /// Host-side gap before this function's kernels reach the GPU: MPI
    /// collectives, halo packing, host bookkeeping. This is the GPU-idle
    /// window where the DVFS governor's clock decays (Fig. 9's end-of-step
    /// dips). Scales weakly (logarithmically) with the rank count.
    pub fn host_overhead(self, ranks: usize) -> SimDuration {
        let log_p = (usize::BITS - ranks.max(1).leading_zeros()) as u64;
        match self {
            FuncId::DomainDecompAndSync => {
                SimDuration::from_micros(4000) + SimDuration::from_micros(500) * log_p
            }
            FuncId::Timestep => {
                SimDuration::from_micros(800) + SimDuration::from_micros(120) * log_p
            }
            FuncId::EnergyConservation => {
                SimDuration::from_micros(700) + SimDuration::from_micros(120) * log_p
            }
            _ => SimDuration::from_micros(50),
        }
    }

    /// Architecture de-rate: efficiency penalty of the less-optimized HIP
    /// port on AMD GCDs. The paper reads Fig. 5's LUMI-G numbers
    /// (MomentumEnergy at 45.8 % of GPU energy vs 25.3 % on the A100) as "a
    /// clear indication that MomentumEnergy can further be optimized for AMD
    /// GPUs"; we reproduce that inefficiency as extra compute work on
    /// MI250X-class devices.
    pub fn arch_flops_derate(self, gpu_name: &str) -> f64 {
        if !gpu_name.contains("MI250X") {
            return 1.0;
        }
        match self {
            FuncId::MomentumEnergy => 5.0,
            FuncId::IADVelocityDivCurl => 2.0,
            _ => 1.0,
        }
    }

    /// True for functions dominated by communication / host work rather
    /// than GPU kernels.
    pub fn is_communication(self) -> bool {
        matches!(
            self,
            FuncId::DomainDecompAndSync | FuncId::Timestep | FuncId::EnergyConservation
        )
    }
}

impl std::fmt::Display for FuncId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-scenario kernel mix: a pair of (FLOPs, DRAM bytes) multipliers applied
/// on top of the per-kernel `FuncId` coefficients so each scenario sits at a
/// different point on the compute-vs-bandwidth roofline — and the tuner's per-kernel
/// frequency tables genuinely differ per scenario, as in the paper's
/// turbulence-vs-Evrard contrast.
///
/// `Reference` is the identity mix: the Table I workloads (turbulence,
/// Evrard, Sedov) keep their calibrated coefficients bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadProfile {
    /// Table I coefficients unchanged (turbulence / Evrard / Sedov).
    Reference,
    /// Kelvin–Helmholtz: shear layers keep the viscosity/gradient kernels
    /// hot — extra FLOPs in IAD, AV switches, and MomentumEnergy push the
    /// mix further compute-bound.
    ShearLayer,
    /// Rotating disk: the tree walk dominates — heavier Gravity FLOPs and a
    /// chattier decomposition (orbit-driven particle churn across domains).
    GravityDisk,
    /// Sod shock tube: planar streaming states with cheap per-pair physics —
    /// the mix slides memory-bound, so EDP optima sit at lower core clocks.
    ShockTube,
}

impl WorkloadProfile {
    /// Profile for an IC's scenario name; unknown names get the reference
    /// Table I mix.
    pub fn for_scenario(name: &str) -> WorkloadProfile {
        match name {
            "KelvinHelmholtz" => WorkloadProfile::ShearLayer,
            "RotatingDisk" => WorkloadProfile::GravityDisk,
            "SodShockTube" => WorkloadProfile::ShockTube,
            _ => WorkloadProfile::Reference,
        }
    }

    /// `(flops multiplier, bytes multiplier)` for one function under this
    /// mix.
    pub fn factors(self, func: FuncId) -> (f64, f64) {
        match self {
            WorkloadProfile::Reference => (1.0, 1.0),
            WorkloadProfile::ShearLayer => match func {
                FuncId::IADVelocityDivCurl => (1.6, 1.0),
                FuncId::AVSwitches => (1.8, 1.1),
                FuncId::MomentumEnergy => (1.25, 1.0),
                FuncId::FindNeighbors => (1.1, 1.2),
                _ => (1.0, 1.0),
            },
            WorkloadProfile::GravityDisk => match func {
                FuncId::Gravity => (1.8, 1.1),
                FuncId::DomainDecompAndSync => (1.2, 1.5),
                FuncId::MomentumEnergy => (0.9, 1.0),
                _ => (1.0, 1.0),
            },
            WorkloadProfile::ShockTube => match func {
                FuncId::MomentumEnergy => (0.65, 1.1),
                FuncId::IADVelocityDivCurl => (0.7, 1.15),
                FuncId::EquationOfState => (1.3, 1.6),
                FuncId::XMass => (1.0, 1.3),
                FuncId::UpdateQuantities => (1.0, 1.4),
                _ => (1.0, 1.0),
            },
        }
    }

    /// The function's paper-scale workload under this scenario's mix.
    pub fn workload(self, func: FuncId, n_particles: f64) -> KernelWorkload {
        let (fm, bm) = self.factors(func);
        let mut w = func.workload(n_particles);
        w.flops *= fm;
        w.bytes *= bm;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::{ExecModel, GpuSpec, MegaHertz, RooflineModel};

    #[test]
    fn names_roundtrip() {
        for f in FuncId::ALL {
            assert_eq!(FuncId::from_name(f.name()), Some(f));
        }
        assert_eq!(FuncId::from_name("NoSuchKernel"), None);
    }

    #[test]
    fn momentum_energy_is_the_most_expensive_kernel() {
        let n = 91.125e6; // 450^3
        let gpu = GpuSpec::a100_pcie_40gb();
        let model = RooflineModel::default();
        let t_me = model
            .duration(&FuncId::MomentumEnergy.workload(n), MegaHertz(1410), &gpu)
            .as_secs_f64();
        for f in FuncId::ALL {
            if f == FuncId::MomentumEnergy {
                continue;
            }
            let t = model
                .duration(&f.workload(n), MegaHertz(1410), &gpu)
                .as_secs_f64();
            assert!(
                t <= t_me + 1e-12,
                "{f} ({t}s) exceeds MomentumEnergy ({t_me}s)"
            );
        }
    }

    #[test]
    fn compute_bound_kernels_slow_down_over_20_percent_at_1005() {
        let n = 91.125e6;
        let gpu = GpuSpec::a100_pcie_40gb();
        let model = RooflineModel::default();
        for f in [FuncId::MomentumEnergy, FuncId::IADVelocityDivCurl] {
            let w = f.workload(n);
            let hi = model.duration(&w, MegaHertz(1410), &gpu).as_secs_f64();
            let lo = model.duration(&w, MegaHertz(1005), &gpu).as_secs_f64();
            let slowdown = lo / hi - 1.0;
            assert!(slowdown > 0.20, "{f}: slowdown {slowdown} (paper: >20 %)");
            assert!(slowdown < 0.41, "{f}: slowdown {slowdown} above 1/f bound");
        }
    }

    #[test]
    fn memory_bound_kernels_barely_slow_down_at_1005() {
        let n = 91.125e6;
        let gpu = GpuSpec::a100_pcie_40gb();
        let model = RooflineModel::default();
        for f in [
            FuncId::XMass,
            FuncId::EquationOfState,
            FuncId::UpdateQuantities,
        ] {
            let w = f.workload(n);
            let hi = model.duration(&w, MegaHertz(1410), &gpu).as_secs_f64();
            let lo = model.duration(&w, MegaHertz(1005), &gpu).as_secs_f64();
            let slowdown = lo / hi - 1.0;
            assert!(
                slowdown < 0.12,
                "{f}: slowdown {slowdown} (should be bandwidth-bound)"
            );
        }
    }

    #[test]
    fn domain_decomp_is_launch_heavy() {
        let w = FuncId::DomainDecompAndSync.workload(91.125e6);
        assert!(
            w.launches >= 100,
            "must model the lightweight-launch stream"
        );
        assert!(w.compute_activity < 0.3);
    }

    #[test]
    fn host_overhead_grows_with_ranks_for_collectives() {
        let one = FuncId::Timestep.host_overhead(1);
        let many = FuncId::Timestep.host_overhead(1024);
        assert!(many > one);
        // GPU-resident kernels keep negligible host gaps.
        assert!(FuncId::MomentumEnergy.host_overhead(1024) < SimDuration::from_micros(100));
    }

    #[test]
    fn communication_functions_flagged() {
        assert!(FuncId::DomainDecompAndSync.is_communication());
        assert!(FuncId::Timestep.is_communication());
        assert!(!FuncId::MomentumEnergy.is_communication());
    }

    #[test]
    fn workload_scales_linearly_with_particles() {
        let w1 = FuncId::MomentumEnergy.workload(1e6);
        let w2 = FuncId::MomentumEnergy.workload(2e6);
        assert!((w2.flops / w1.flops - 2.0).abs() < 1e-12);
        assert!((w2.bytes / w1.bytes - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reference_profile_is_the_identity_mix() {
        for f in FuncId::ALL {
            let plain = f.workload(1e6);
            let via = WorkloadProfile::Reference.workload(f, 1e6);
            assert_eq!(plain.flops, via.flops, "{f} flops");
            assert_eq!(plain.bytes, via.bytes, "{f} bytes");
            assert_eq!(plain.launches, via.launches, "{f} launches");
        }
        for name in ["SubsonicTurbulence", "EvrardCollapse", "SedovBlast"] {
            assert_eq!(
                WorkloadProfile::for_scenario(name),
                WorkloadProfile::Reference
            );
        }
    }

    #[test]
    fn scenario_profiles_shift_the_roofline_in_opposite_directions() {
        // Arithmetic intensity (F/B) of the dominant pairwise kernel must
        // rise under the shear mix and fall under the shock-tube mix, so the
        // tuner lands on different sweet spots per scenario.
        let f = FuncId::MomentumEnergy;
        let intensity = |p: WorkloadProfile| {
            let w = p.workload(f, 1e6);
            w.flops / w.bytes
        };
        let base = intensity(WorkloadProfile::Reference);
        assert!(intensity(WorkloadProfile::ShearLayer) > base);
        assert!(intensity(WorkloadProfile::ShockTube) < base);
        // The disk mix is gravity-dominated instead.
        let g_base = WorkloadProfile::Reference.workload(FuncId::Gravity, 1e6);
        let g_disk = WorkloadProfile::GravityDisk.workload(FuncId::Gravity, 1e6);
        assert!(g_disk.flops > 1.5 * g_base.flops);
    }

    #[test]
    fn scenario_profiles_map_from_ic_names() {
        assert_eq!(
            WorkloadProfile::for_scenario("KelvinHelmholtz"),
            WorkloadProfile::ShearLayer
        );
        assert_eq!(
            WorkloadProfile::for_scenario("RotatingDisk"),
            WorkloadProfile::GravityDisk
        );
        assert_eq!(
            WorkloadProfile::for_scenario("SodShockTube"),
            WorkloadProfile::ShockTube
        );
    }
}
