//! Barnes-Hut gravity (the `Gravity` function of the Evrard collapse
//! workload; the turbulence workload does not call it — the functional
//! difference the paper selects its two workloads for).

use cornerstone::Aabb;

/// A Barnes-Hut octree node over a point-mass set.
#[derive(Debug)]
enum BhNode {
    /// No particles.
    Empty,
    /// One particle: index into the source arrays.
    Leaf(usize),
    /// Internal node with aggregated mass and center of mass.
    Internal {
        children: Box<[BhNode; 8]>,
        mass: f64,
        com: [f64; 3],
        /// Geometric edge length of the node's cube.
        size: f64,
    },
}

/// Barnes-Hut tree with configurable opening angle and Plummer softening.
#[derive(Debug)]
pub struct BhTree {
    root: BhNode,
    theta2: f64,
    eps2: f64,
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    m: Vec<f64>,
}

/// Gravitational constant in simulation units (Evrard uses G = 1).
pub const G: f64 = 1.0;

/// Below this particle count a parallel top-level build costs more in
/// thread spawns than the subdivision saves.
const PAR_BUILD_THRESHOLD: usize = 4096;

impl BhTree {
    /// Build over a global particle set. `theta` is the opening angle
    /// (0 = exact Newton sum), `eps` the Plummer softening length.
    pub fn build(x: &[f64], y: &[f64], z: &[f64], m: &[f64], theta: f64, eps: f64) -> Self {
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), z.len());
        assert_eq!(x.len(), m.len());
        let bb = Aabb::of_points(x, y, z);
        let (cx, cy, cz, half) = if bb.is_empty() {
            (0.0, 0.0, 0.0, 1.0)
        } else {
            let half = ((bb.xmax - bb.xmin)
                .max(bb.ymax - bb.ymin)
                .max(bb.zmax - bb.zmin)
                / 2.0)
                .max(1e-9)
                * 1.001;
            (
                (bb.xmin + bb.xmax) / 2.0,
                (bb.ymin + bb.ymax) / 2.0,
                (bb.zmin + bb.zmax) / 2.0,
                half,
            )
        };
        let indices: Vec<usize> = (0..x.len()).collect();
        let root = build_node(x, y, z, m, indices, [cx, cy, cz], half, 0);
        BhTree {
            root,
            theta2: theta * theta,
            eps2: eps * eps,
            x: x.to_vec(),
            y: y.to_vec(),
            z: z.to_vec(),
            m: m.to_vec(),
        }
    }

    /// Acceleration and potential at a field point. `skip` excludes one
    /// source index (self-interaction).
    pub fn accel_at(&self, px: f64, py: f64, pz: f64, skip: Option<usize>) -> ([f64; 3], f64) {
        let mut acc = [0.0f64; 3];
        let mut phi = 0.0f64;
        self.walk(&self.root, px, py, pz, skip, &mut acc, &mut phi);
        (acc, phi)
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        node: &BhNode,
        px: f64,
        py: f64,
        pz: f64,
        skip: Option<usize>,
        acc: &mut [f64; 3],
        phi: &mut f64,
    ) {
        match node {
            BhNode::Empty => {}
            BhNode::Leaf(i) => {
                if skip == Some(*i) {
                    return;
                }
                self.point_contribution(
                    self.x[*i], self.y[*i], self.z[*i], self.m[*i], px, py, pz, acc, phi,
                );
            }
            BhNode::Internal {
                children,
                mass,
                com,
                size,
            } => {
                let dx = com[0] - px;
                let dy = com[1] - py;
                let dz = com[2] - pz;
                let d2 = dx * dx + dy * dy + dz * dz;
                if size * size < self.theta2 * d2 {
                    self.point_contribution(com[0], com[1], com[2], *mass, px, py, pz, acc, phi);
                } else {
                    for c in children.iter() {
                        self.walk(c, px, py, pz, skip, acc, phi);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn point_contribution(
        &self,
        sx: f64,
        sy: f64,
        sz: f64,
        sm: f64,
        px: f64,
        py: f64,
        pz: f64,
        acc: &mut [f64; 3],
        phi: &mut f64,
    ) {
        let dx = sx - px;
        let dy = sy - py;
        let dz = sz - pz;
        let d2 = dx * dx + dy * dy + dz * dz + self.eps2;
        let d = d2.sqrt();
        let f = G * sm / (d2 * d);
        acc[0] += f * dx;
        acc[1] += f * dy;
        acc[2] += f * dz;
        *phi -= G * sm / d;
    }
}

#[allow(clippy::too_many_arguments)]
fn build_node(
    x: &[f64],
    y: &[f64],
    z: &[f64],
    m: &[f64],
    indices: Vec<usize>,
    center: [f64; 3],
    half: f64,
    depth: u32,
) -> BhNode {
    match indices.len() {
        0 => BhNode::Empty,
        1 => BhNode::Leaf(indices[0]),
        _ => {
            // Depth guard: coincident points cannot be separated; aggregate.
            if depth > 48 {
                let mass: f64 = indices.iter().map(|&i| m[i]).sum();
                let com = com_of(x, y, z, m, &indices, mass);
                return BhNode::Internal {
                    children: Box::new([
                        BhNode::Empty,
                        BhNode::Empty,
                        BhNode::Empty,
                        BhNode::Empty,
                        BhNode::Empty,
                        BhNode::Empty,
                        BhNode::Empty,
                        BhNode::Leaf(indices[0]),
                    ]),
                    mass,
                    com,
                    size: half * 2.0,
                };
            }
            let mut buckets: [Vec<usize>; 8] = Default::default();
            for &i in &indices {
                let mut oct = 0usize;
                if x[i] >= center[0] {
                    oct |= 1;
                }
                if y[i] >= center[1] {
                    oct |= 2;
                }
                if z[i] >= center[2] {
                    oct |= 4;
                }
                buckets[oct].push(i);
            }
            let quarter = half / 2.0;
            let child = |oct: usize, bucket: Vec<usize>| {
                let cx = center[0] + if oct & 1 != 0 { quarter } else { -quarter };
                let cy = center[1] + if oct & 2 != 0 { quarter } else { -quarter };
                let cz = center[2] + if oct & 4 != 0 { quarter } else { -quarter };
                build_node(x, y, z, m, bucket, [cx, cy, cz], quarter, depth + 1)
            };
            // The eight top-level octants are independent subtrees; building
            // them concurrently yields the same tree as the serial recursion
            // because each subtree depends only on its own bucket.
            let children: Vec<BhNode> = if depth == 0 && indices.len() >= PAR_BUILD_THRESHOLD {
                let buckets: Vec<Vec<usize>> = buckets.into_iter().collect();
                par::par_map(8, |oct| child(oct, buckets[oct].clone()))
            } else {
                buckets
                    .into_iter()
                    .enumerate()
                    .map(|(oct, bucket)| child(oct, bucket))
                    .collect()
            };
            let mass: f64 = indices.iter().map(|&i| m[i]).sum();
            let com = com_of(x, y, z, m, &indices, mass);
            BhNode::Internal {
                children: Box::new(children.try_into().expect("exactly 8 children")),
                mass,
                com,
                size: half * 2.0,
            }
        }
    }
}

fn com_of(x: &[f64], y: &[f64], z: &[f64], m: &[f64], indices: &[usize], mass: f64) -> [f64; 3] {
    let mut c = [0.0f64; 3];
    for &i in indices {
        c[0] += m[i] * x[i];
        c[1] += m[i] * y[i];
        c[2] += m[i] * z[i];
    }
    if mass > 0.0 {
        c[0] /= mass;
        c[1] /= mass;
        c[2] /= mass;
    }
    c
}

/// Direct O(n²) reference sum (tests and small systems).
pub fn direct_accel(
    x: &[f64],
    y: &[f64],
    z: &[f64],
    m: &[f64],
    i: usize,
    eps: f64,
) -> ([f64; 3], f64) {
    let mut acc = [0.0f64; 3];
    let mut phi = 0.0;
    let eps2 = eps * eps;
    for j in 0..x.len() {
        if j == i {
            continue;
        }
        let dx = x[j] - x[i];
        let dy = y[j] - y[i];
        let dz = z[j] - z[i];
        let d2 = dx * dx + dy * dy + dz * dz + eps2;
        let d = d2.sqrt();
        let f = G * m[j] / (d2 * d);
        acc[0] += f * dx;
        acc[1] += f * dy;
        acc[2] += f * dz;
        phi -= G * m[j] / d;
    }
    (acc, phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sphere_cloud(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        while x.len() < n {
            let (a, b, c) = (
                rng.random::<f64>() * 2.0 - 1.0,
                rng.random::<f64>() * 2.0 - 1.0,
                rng.random::<f64>() * 2.0 - 1.0,
            );
            if a * a + b * b + c * c <= 1.0 {
                x.push(a);
                y.push(b);
                z.push(c);
            }
        }
        let m = vec![1.0 / n as f64; n];
        (x, y, z, m)
    }

    #[test]
    fn two_body_matches_newton() {
        let x = vec![-0.5, 0.5];
        let y = vec![0.0, 0.0];
        let z = vec![0.0, 0.0];
        let m = vec![2.0, 3.0];
        let tree = BhTree::build(&x, &y, &z, &m, 0.5, 0.0);
        let (a0, phi0) = tree.accel_at(x[0], y[0], z[0], Some(0));
        // F = G m2 / d^2 = 3.0 toward +x.
        assert!((a0[0] - 3.0).abs() < 1e-12, "ax {}", a0[0]);
        assert!(a0[1].abs() < 1e-12 && a0[2].abs() < 1e-12);
        assert!((phi0 + 3.0).abs() < 1e-12, "phi {phi0}");
        let (a1, _) = tree.accel_at(x[1], y[1], z[1], Some(1));
        assert!((a1[0] + 2.0).abs() < 1e-12, "reaction force");
    }

    #[test]
    fn theta_zero_matches_direct_sum_exactly() {
        let (x, y, z, m) = sphere_cloud(150, 1);
        let tree = BhTree::build(&x, &y, &z, &m, 0.0, 0.01);
        for i in (0..150).step_by(29) {
            let (at, pt) = tree.accel_at(x[i], y[i], z[i], Some(i));
            let (ad, pd) = direct_accel(&x, &y, &z, &m, i, 0.01);
            for k in 0..3 {
                assert!(
                    (at[k] - ad[k]).abs() < 1e-10,
                    "component {k}: {} vs {}",
                    at[k],
                    ad[k]
                );
            }
            assert!((pt - pd).abs() < 1e-10);
        }
    }

    #[test]
    fn moderate_theta_approximates_direct_sum() {
        let (x, y, z, m) = sphere_cloud(400, 2);
        let tree = BhTree::build(&x, &y, &z, &m, 0.6, 0.01);
        let mut max_rel = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut count = 0usize;
        for i in (0..400).step_by(31) {
            let (at, _) = tree.accel_at(x[i], y[i], z[i], Some(i));
            let (ad, _) = direct_accel(&x, &y, &z, &m, i, 0.01);
            let mag = (ad[0].powi(2) + ad[1].powi(2) + ad[2].powi(2))
                .sqrt()
                .max(1e-12);
            let err = ((at[0] - ad[0]).powi(2) + (at[1] - ad[1]).powi(2) + (at[2] - ad[2]).powi(2))
                .sqrt()
                / mag;
            max_rel = max_rel.max(err);
            sum_sq += err * err;
            count += 1;
        }
        let rms = (sum_sq / count as f64).sqrt();
        assert!(rms < 0.04, "BH rms error {rms} too large for theta=0.6");
        assert!(max_rel < 0.15, "BH worst-case error {max_rel} too large");
    }

    #[test]
    fn far_field_looks_like_point_mass() {
        let (x, y, z, m) = sphere_cloud(200, 3);
        let tree = BhTree::build(&x, &y, &z, &m, 0.7, 0.0);
        // Total mass 1 at ~origin; field at distance 10 ~ 1/100.
        let (a, phi) = tree.accel_at(10.0, 0.0, 0.0, None);
        assert!((a[0] + 0.01).abs() < 5e-4, "ax {}", a[0]);
        assert!((phi + 0.1).abs() < 5e-3, "phi {phi}");
    }

    #[test]
    fn coincident_points_do_not_recurse_forever() {
        let x = vec![0.25; 10];
        let y = vec![0.25; 10];
        let z = vec![0.25; 10];
        let m = vec![0.1; 10];
        let tree = BhTree::build(&x, &y, &z, &m, 0.5, 0.05);
        let (a, _) = tree.accel_at(0.5, 0.5, 0.5, None);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_tree_exerts_no_force() {
        let tree = BhTree::build(&[], &[], &[], &[], 0.5, 0.0);
        let (a, phi) = tree.accel_at(1.0, 2.0, 3.0, None);
        assert_eq!(a, [0.0; 3]);
        assert_eq!(phi, 0.0);
    }
}
