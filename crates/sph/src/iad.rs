//! `IADVelocityDivCurl`: Integral Approach to Derivatives tensor plus
//! velocity divergence and curl.
//!
//! The IAD scheme (García-Senz et al.) replaces kernel-gradient derivatives
//! with a linearly-exact integral formulation: each particle carries the
//! inverse `C = tau^{-1}` of the local moment matrix
//! `tau_ab = sum_j V_j (r_j - r_i)_a (r_j - r_i)_b W_ij`.

use cornerstone::{Box3, NeighborList, NeighborSearch};

use crate::kernels::{Kernel, RowKernel};
use crate::lanes;
use crate::particles::Particles;

/// Invert a symmetric 3x3 matrix given as `[xx, xy, xz, yy, yz, zz]`.
/// Falls back to a scaled identity when the matrix is near-singular
/// (degenerate particle configurations: isolated particles, collinear sets).
pub fn invert_sym3(t: [f64; 6]) -> [f64; 6] {
    let [xx, xy, xz, yy, yz, zz] = t;
    let det = xx * (yy * zz - yz * yz) - xy * (xy * zz - yz * xz) + xz * (xy * yz - yy * xz);
    let scale = xx.abs().max(yy.abs()).max(zz.abs());
    if !det.is_finite() || det.abs() <= 1e-12 * scale.powi(3).max(1e-300) {
        // Regularized fallback: pseudo-inverse of the diagonal.
        let inv = |d: f64| {
            if d.is_finite() && d.abs() > 1e-300 {
                1.0 / d
            } else {
                0.0
            }
        };
        return [inv(xx), 0.0, 0.0, inv(yy), 0.0, inv(zz)];
    }
    let idet = 1.0 / det;
    [
        (yy * zz - yz * yz) * idet,
        (xz * yz - xy * zz) * idet,
        (xy * yz - xz * yy) * idet,
        (xx * zz - xz * xz) * idet,
        (xy * xz - xx * yz) * idet,
        (xx * yy - xy * xy) * idet,
    ]
}

/// Compute IAD tensors, velocity divergence and curl magnitude for owned
/// particles.
///
/// Parallelized by gather: each index reads neighbor state but writes only
/// its own tensor/divergence/curl slot, with the two neighbor sweeps kept
/// in cell-list order — bit-identical to the serial loop, and identical
/// between the direct-grid and precomputed-list neighbor sources.
pub fn iad_divv_curlv<N: NeighborSearch + Sync>(
    parts: &mut Particles,
    nb: &N,
    bbox: &Box3,
    kernel: Kernel,
) {
    let p = &*parts;
    let n = p.n_local;
    if let Some(nl) = nb.as_list() {
        let per_particle: Vec<([f64; 6], f64, [f64; 3])> =
            par::par_map(n, |i| iad_row_blocked(p, nl, i, kernel));
        write_iad(parts, per_particle);
        return;
    }
    let per_particle: Vec<([f64; 6], f64, [f64; 3])> = par::par_map(n, |i| {
        let (x, y, z) = (&p.x, &p.y, &p.z);
        let hi = p.h[i];
        let radius = kernel.support(hi);
        let mut tau = [0.0f64; 6];
        nb.for_neighbors_of(i, radius, x, y, z, bbox, |j, d2| {
            if j == i || d2 == 0.0 {
                return;
            }
            // Bootstrap volume for particles whose density is not yet
            // known (first-step halos): fall back to the mass itself, the
            // same rule XMass uses.
            let vj = if p.rho[j] > 0.0 {
                p.m[j] / p.rho[j]
            } else {
                p.m[j]
            };
            let (dx, dy, dz) = bbox.delta(x[j], y[j], z[j], x[i], y[i], z[i]);
            let w = kernel.w(d2.sqrt(), hi);
            tau[0] += vj * dx * dx * w;
            tau[1] += vj * dx * dy * w;
            tau[2] += vj * dx * dz * w;
            tau[3] += vj * dy * dy * w;
            tau[4] += vj * dy * dz * w;
            tau[5] += vj * dz * dz * w;
        });
        let c = invert_sym3(tau);

        // Divergence and curl via the IAD linear operator:
        // dv_a/dx_b ~= sum_j V_j (v_j - v_i)_a (C (r_j - r_i))_b W_ij
        let mut grad = [[0.0f64; 3]; 3]; // grad[a][b] = dv_a/dx_b
        nb.for_neighbors_of(i, radius, x, y, z, bbox, |j, d2| {
            if j == i || d2 == 0.0 {
                return;
            }
            // Same bootstrap-volume rule as the tensor sweep above.
            let vj = if p.rho[j] > 0.0 {
                p.m[j] / p.rho[j]
            } else {
                p.m[j]
            };
            let (dx, dy, dz) = bbox.delta(x[j], y[j], z[j], x[i], y[i], z[i]);
            let w = kernel.w(d2.sqrt(), hi);
            // C * d (symmetric storage: xx xy xz yy yz zz)
            let cdx = c[0] * dx + c[1] * dy + c[2] * dz;
            let cdy = c[1] * dx + c[3] * dy + c[4] * dz;
            let cdz = c[2] * dx + c[4] * dy + c[5] * dz;
            let dvx = p.vx[j] - p.vx[i];
            let dvy = p.vy[j] - p.vy[i];
            let dvz = p.vz[j] - p.vz[i];
            for (a, dva) in [dvx, dvy, dvz].into_iter().enumerate() {
                grad[a][0] += vj * dva * cdx * w;
                grad[a][1] += vj * dva * cdy * w;
                grad[a][2] += vj * dva * cdz * w;
            }
        });
        let divv = grad[0][0] + grad[1][1] + grad[2][2];
        let curl = [
            grad[2][1] - grad[1][2],
            grad[0][2] - grad[2][0],
            grad[1][0] - grad[0][1],
        ];
        (c, divv, curl)
    });
    write_iad(parts, per_particle);
}

/// IAD tensors + divergence/curl over an explicit row subset of the shared
/// CSR list (interior/boundary split).
///
/// Per-row math is identical to [`iad_divv_curlv`]'s list path, and the
/// sweep's outputs (`c11..c33`, `divv`, `curlv`) are never inputs to other
/// rows of the same sweep — it reads `rho`/`m`/velocities, written by
/// earlier phases — so two disjoint subsets compose bit-identically with
/// the full sweep.
pub fn iad_divv_curlv_rows(
    parts: &mut Particles,
    nl: &NeighborList,
    kernel: Kernel,
    rows: &[usize],
) {
    let p = &*parts;
    let per_row: Vec<([f64; 6], f64, [f64; 3])> =
        par::par_map(rows.len(), |k| iad_row_blocked(p, nl, rows[k], kernel));
    for (k, (t, divv, [cx, cy, cz])) in per_row.into_iter().enumerate() {
        let i = rows[k];
        parts.c11[i] = t[0];
        parts.c12[i] = t[1];
        parts.c13[i] = t[2];
        parts.c22[i] = t[3];
        parts.c23[i] = t[4];
        parts.c33[i] = t[5];
        parts.divv[i] = divv;
        parts.curlv[i] = (cx * cx + cy * cy + cz * cz).sqrt();
    }
}

fn write_iad(parts: &mut Particles, per_particle: Vec<([f64; 6], f64, [f64; 3])>) {
    for (i, (t, divv, [cx, cy, cz])) in per_particle.into_iter().enumerate() {
        parts.c11[i] = t[0];
        parts.c12[i] = t[1];
        parts.c13[i] = t[2];
        parts.c22[i] = t[3];
        parts.c23[i] = t[4];
        parts.c33[i] = t[5];
        parts.divv[i] = divv;
        parts.curlv[i] = (cx * cx + cy * cy + cz * cz).sqrt();
    }
}

/// Blocked IAD row. One fused pair filter serves both passes (the scalar
/// path re-walks the neighbor source twice at the same radius, visiting
/// the same pairs in the same order, and skips `j == i || d2 == 0` in
/// each — exactly the set [`cornerstone::NeighborList::filter_pairs_into`]
/// drops), and the per-pair kernel value `W` (batched through the
/// hoisted-`h` [`RowKernel`]) and bootstrap volume `V_j` are computed once
/// and reused — the scalar path recomputes both in its second sweep with
/// identical inputs, so reuse changes nothing bitwise and halves the
/// kernel evaluations.
///
/// The stored CSR delta is exactly the `r_j - r_i` direction the scalar
/// pass feeds `Box3::delta`, and every accumulation below keeps the scalar
/// expressions in visit order through [`lanes::Acc`], so default-feature
/// results are bit-identical. Under `fast-math` the `Sinc5` kernel
/// evaluation and the accumulator association are relaxed.
fn iad_row_blocked(
    p: &Particles,
    nl: &NeighborList,
    i: usize,
    kernel: Kernel,
) -> ([f64; 6], f64, [f64; 3]) {
    let hi = p.h[i];
    let radius = kernel.support(hi);
    let rkn = RowKernel::new(kernel, hi);
    let (vxi, vyi, vzi) = (p.vx[i], p.vy[i], p.vz[i]);
    lanes::with_scratch(|s| {
        let lanes::RowScratch {
            row, r, w, vj, aux, ..
        } = s;
        nl.filter_pairs_into::<false>(i, radius, row);
        let m = row.len();
        lanes::sqrt_into(&row.d2, r);
        rkn.w_into(r, w);
        vj.clear();
        vj.resize(m, 0.0);
        for (v, &j32) in vj.iter_mut().zip(&row.j) {
            let j = j32 as usize;
            // Bootstrap volume for particles whose density is not yet
            // known (first-step halos): fall back to the mass itself, the
            // same rule XMass uses.
            *v = if p.rho[j] > 0.0 {
                p.m[j] / p.rho[j]
            } else {
                p.m[j]
            };
        }

        // Pass 1: moment tensor.
        let mut tau_acc = [lanes::Acc::default(); 6];
        for k in 0..m {
            let (dx, dy, dz, wv, v) = (row.dx[k], row.dy[k], row.dz[k], w[k], vj[k]);
            tau_acc[0].add(k, v * dx * dx * wv);
            tau_acc[1].add(k, v * dx * dy * wv);
            tau_acc[2].add(k, v * dx * dz * wv);
            tau_acc[3].add(k, v * dy * dy * wv);
            tau_acc[4].add(k, v * dy * dz * wv);
            tau_acc[5].add(k, v * dz * dz * wv);
        }
        let mut tau = [0.0f64; 6];
        for (t, a) in tau.iter_mut().zip(tau_acc) {
            *t = a.value();
        }
        let c = invert_sym3(tau);

        // Pass 2: C·d products as a contiguous lane pass, then the velocity
        // gradient with the scalar expressions and order.
        let [cdx, cdy, cdz, ..] = aux;
        cdx.clear();
        cdx.resize(m, 0.0);
        cdy.clear();
        cdy.resize(m, 0.0);
        cdz.clear();
        cdz.resize(m, 0.0);
        for k in 0..m {
            let (dx, dy, dz) = (row.dx[k], row.dy[k], row.dz[k]);
            cdx[k] = c[0] * dx + c[1] * dy + c[2] * dz;
            cdy[k] = c[1] * dx + c[3] * dy + c[4] * dz;
            cdz[k] = c[2] * dx + c[4] * dy + c[5] * dz;
        }
        let mut grad_acc = [[lanes::Acc::default(); 3]; 3];
        for k in 0..m {
            let j = row.j[k] as usize;
            let (v, wv) = (vj[k], w[k]);
            let dvx = p.vx[j] - vxi;
            let dvy = p.vy[j] - vyi;
            let dvz = p.vz[j] - vzi;
            for (a, dva) in [dvx, dvy, dvz].into_iter().enumerate() {
                grad_acc[a][0].add(k, v * dva * cdx[k] * wv);
                grad_acc[a][1].add(k, v * dva * cdy[k] * wv);
                grad_acc[a][2].add(k, v * dva * cdz[k] * wv);
            }
        }
        let grad: [[f64; 3]; 3] =
            grad_acc.map(|row_acc| [row_acc[0].value(), row_acc[1].value(), row_acc[2].value()]);
        let divv = grad[0][0] + grad[1][1] + grad[2][2];
        let curl = [
            grad[2][1] - grad[1][2],
            grad[0][2] - grad[2][0],
            grad[1][0] - grad[0][1],
        ];
        (c, divv, curl)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornerstone::CellList;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn glass(n_side: usize, seed: u64) -> (Particles, Box3) {
        let bbox = Box3::unit_periodic();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut parts = Particles::new();
        let spacing = 1.0 / n_side as f64;
        let m = 1.0 / (n_side * n_side * n_side) as f64;
        for ix in 0..n_side {
            for iy in 0..n_side {
                for iz in 0..n_side {
                    let mut jitter = || (rng.random::<f64>() - 0.5) * 0.2 * spacing;
                    parts.push(
                        (ix as f64 + 0.5) * spacing + jitter(),
                        (iy as f64 + 0.5) * spacing + jitter(),
                        (iz as f64 + 0.5) * spacing + jitter(),
                        0.0,
                        0.0,
                        0.0,
                        m,
                        1.3 * spacing,
                        1.0,
                    );
                }
            }
        }
        (parts, bbox)
    }

    fn prepare(parts: &mut Particles, bbox: &Box3, kernel: Kernel) -> CellList {
        let grid = CellList::build(
            &parts.x,
            &parts.y,
            &parts.z,
            bbox,
            kernel.support(parts.h[0]),
        );
        crate::density::density_gradh(parts, &grid, bbox, kernel);
        grid
    }

    #[test]
    fn invert_sym3_roundtrip() {
        let t = [4.0, 1.0, 0.5, 3.0, 0.2, 5.0];
        let inv = invert_sym3(t);
        // Multiply T * T^-1 and check identity (symmetric packing).
        #[allow(clippy::needless_range_loop)]
        let mul = |a: [f64; 6], b: [f64; 6]| -> [[f64; 3]; 3] {
            let am = [[a[0], a[1], a[2]], [a[1], a[3], a[4]], [a[2], a[4], a[5]]];
            let bm = [[b[0], b[1], b[2]], [b[1], b[3], b[4]], [b[2], b[4], b[5]]];
            let mut out = [[0.0; 3]; 3];
            for r in 0..3 {
                for c in 0..3 {
                    out[r][c] = (0..3).map(|k| am[r][k] * bm[k][c]).sum();
                }
            }
            out
        };
        let id = mul(t, inv);
        for (r, row) in id.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-12, "at ({r},{c}): {v}");
            }
        }
    }

    #[test]
    fn invert_sym3_singular_falls_back() {
        let inv = invert_sym3([0.0; 6]);
        assert_eq!(inv, [0.0; 6]);
        let inv = invert_sym3([2.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(inv[0], 0.5);
    }

    #[test]
    fn linear_velocity_field_recovers_exact_divergence() {
        // v = (x, 2y, 3z) -> div v = 6, curl v = 0. IAD is linearly exact in
        // the interior; tolerate small periodic-wrap edge effects.
        let kernel = Kernel::CubicSpline;
        let (mut parts, bbox) = glass(10, 5);
        for i in 0..parts.len() {
            parts.vx[i] = parts.x[i];
            parts.vy[i] = 2.0 * parts.y[i];
            parts.vz[i] = 3.0 * parts.z[i];
        }
        let grid = prepare(&mut parts, &bbox, kernel);
        iad_divv_curlv(&mut parts, &grid, &bbox, kernel);
        // Check interior particles (away from the periodic wrap where the
        // linear field is discontinuous).
        let mut checked = 0;
        for i in 0..parts.n_local {
            let interior = parts.x[i] > 0.25
                && parts.x[i] < 0.75
                && parts.y[i] > 0.25
                && parts.y[i] < 0.75
                && parts.z[i] > 0.25
                && parts.z[i] < 0.75;
            if !interior {
                continue;
            }
            checked += 1;
            assert!(
                (parts.divv[i] - 6.0).abs() < 0.35,
                "divv {} at interior particle {i}",
                parts.divv[i]
            );
            assert!(
                parts.curlv[i] < 0.35,
                "curl {} should vanish",
                parts.curlv[i]
            );
        }
        assert!(
            checked > 50,
            "too few interior particles checked: {checked}"
        );
    }

    #[test]
    fn rigid_rotation_recovers_curl_not_div() {
        // v = omega x r with omega = (0,0,1): div = 0, |curl| = 2.
        let kernel = Kernel::CubicSpline;
        let (mut parts, bbox) = glass(10, 6);
        for i in 0..parts.len() {
            let (dx, dy) = (parts.x[i] - 0.5, parts.y[i] - 0.5);
            parts.vx[i] = -dy;
            parts.vy[i] = dx;
            parts.vz[i] = 0.0;
        }
        let grid = prepare(&mut parts, &bbox, kernel);
        iad_divv_curlv(&mut parts, &grid, &bbox, kernel);
        let mut checked = 0;
        for i in 0..parts.n_local {
            let r2 = (parts.x[i] - 0.5).powi(2) + (parts.y[i] - 0.5).powi(2);
            let interior = r2 < 0.04 && parts.z[i] > 0.25 && parts.z[i] < 0.75;
            if !interior {
                continue;
            }
            checked += 1;
            assert!(
                parts.divv[i].abs() < 0.3,
                "div {} should vanish",
                parts.divv[i]
            );
            assert!(
                (parts.curlv[i] - 2.0).abs() < 0.4,
                "curl {}",
                parts.curlv[i]
            );
        }
        assert!(
            checked > 20,
            "too few interior particles checked: {checked}"
        );
    }

    #[test]
    fn iad_tensor_is_finite_everywhere() {
        let kernel = Kernel::WendlandC6;
        let (mut parts, bbox) = glass(8, 7);
        let grid = prepare(&mut parts, &bbox, kernel);
        iad_divv_curlv(&mut parts, &grid, &bbox, kernel);
        for i in 0..parts.n_local {
            for v in [
                parts.c11[i],
                parts.c12[i],
                parts.c13[i],
                parts.c22[i],
                parts.c23[i],
                parts.c33[i],
            ] {
                assert!(v.is_finite(), "non-finite tensor entry at {i}");
            }
        }
    }
}
