//! Initial conditions for the paper's two workloads: Subsonic Turbulence and
//! Evrard Collapse (Table I).

use rand::{rngs::StdRng, Rng, SeedableRng};

use cornerstone::Box3;

use crate::eos::Eos;
use crate::particles::Particles;

/// A fully-specified initial model.
pub struct InitialConditions {
    pub parts: Particles,
    pub bbox: Box3,
    pub eos: Eos,
    /// Whether the workload includes self-gravity (Evrard yes, turbulence no
    /// — the functional difference the paper picks the pair for).
    pub gravity: bool,
    pub name: &'static str,
}

/// Subsonic turbulence: a jittered lattice in a periodic unit box with a
/// solenoidal large-scale velocity field at the given Mach number
/// (isothermal sound speed 1).
pub fn subsonic_turbulence(n_side: usize, mach: f64, seed: u64) -> InitialConditions {
    assert!(n_side >= 2);
    let bbox = Box3::unit_periodic();
    let mut rng = StdRng::seed_from_u64(seed);
    let n3 = n_side.pow(3);
    let spacing = 1.0 / n_side as f64;
    let m = 1.0 / n3 as f64;
    let h = 1.3 * spacing;

    // A handful of random solenoidal Fourier modes: v = sum_k a_k x k_hat
    // cos(2 pi k.x + phi). Curl of each mode is divergence-free by
    // construction (a perpendicular to k).
    const MODES: usize = 6;
    let mut modes = Vec::with_capacity(MODES);
    for _ in 0..MODES {
        let k: [f64; 3] = [
            rng.random_range(1..=2) as f64,
            rng.random_range(1..=2) as f64,
            rng.random_range(1..=2) as f64,
        ];
        // Random direction, then project out the k-component -> solenoidal.
        let a: [f64; 3] = [
            rng.random::<f64>() - 0.5,
            rng.random::<f64>() - 0.5,
            rng.random::<f64>() - 0.5,
        ];
        let k2 = k[0] * k[0] + k[1] * k[1] + k[2] * k[2];
        let adotk = (a[0] * k[0] + a[1] * k[1] + a[2] * k[2]) / k2;
        let a = [
            a[0] - adotk * k[0],
            a[1] - adotk * k[1],
            a[2] - adotk * k[2],
        ];
        let phase: f64 = rng.random::<f64>() * std::f64::consts::TAU;
        modes.push((k, a, phase));
    }

    let mut parts = Particles::new();
    let mut velocities = Vec::with_capacity(n3);
    for ix in 0..n_side {
        for iy in 0..n_side {
            for iz in 0..n_side {
                let jitter = |rng: &mut StdRng| (rng.random::<f64>() - 0.5) * 0.2 * spacing;
                let x = (ix as f64 + 0.5) * spacing + jitter(&mut rng);
                let y = (iy as f64 + 0.5) * spacing + jitter(&mut rng);
                let z = (iz as f64 + 0.5) * spacing + jitter(&mut rng);
                let (x, y, z) = bbox.wrap(x, y, z);
                let mut v = [0.0f64; 3];
                for (k, a, phase) in &modes {
                    let arg = std::f64::consts::TAU * (k[0] * x + k[1] * y + k[2] * z) + phase;
                    let c = arg.cos();
                    v[0] += a[0] * c;
                    v[1] += a[1] * c;
                    v[2] += a[2] * c;
                }
                velocities.push(v);
                parts.push(x, y, z, 0.0, 0.0, 0.0, m, h, 1.0);
            }
        }
    }
    // Normalize to the requested rms Mach number (sound speed = 1).
    let rms = (velocities
        .iter()
        .map(|v| v[0] * v[0] + v[1] * v[1] + v[2] * v[2])
        .sum::<f64>()
        / n3 as f64)
        .sqrt();
    let scale = if rms > 0.0 { mach / rms } else { 0.0 };
    for (i, v) in velocities.iter().enumerate() {
        parts.vx[i] = v[0] * scale;
        parts.vy[i] = v[1] * scale;
        parts.vz[i] = v[2] * scale;
    }

    InitialConditions {
        parts,
        bbox,
        eos: Eos::Isothermal { sound_speed: 1.0 },
        gravity: false,
        name: "SubsonicTurbulence",
    }
}

/// Evrard collapse: a cold gas sphere (M = R = G = 1) with density profile
/// `rho(r) = M / (2 pi R^2 r)` and specific internal energy `u = 0.05`,
/// collapsing under self-gravity.
pub fn evrard(n_side: usize) -> InitialConditions {
    assert!(n_side >= 2);
    // Open box comfortably larger than the sphere.
    let bbox = Box3::cube(-2.0, 2.0, false);
    let spacing = 2.0 / n_side as f64;
    let mut raw = Vec::new();
    for ix in 0..n_side {
        for iy in 0..n_side {
            for iz in 0..n_side {
                let x = -1.0 + (ix as f64 + 0.5) * spacing;
                let y = -1.0 + (iy as f64 + 0.5) * spacing;
                let z = -1.0 + (iz as f64 + 0.5) * spacing;
                let r = (x * x + y * y + z * z).sqrt();
                if r <= 1.0 && r > 0.0 {
                    raw.push((x, y, z, r));
                }
            }
        }
    }
    let n = raw.len();
    let m = 1.0 / n as f64;
    let mut parts = Particles::new();
    for (x, y, z, r) in raw {
        // Radial stretch s -> s^(3/2) maps uniform density to rho ~ 1/r.
        let rs = r.powf(1.5);
        let f = rs / r;
        // Local smoothing from the target profile rho = 1/(2 pi r).
        let rho = 1.0 / (2.0 * std::f64::consts::PI * rs.max(0.05));
        let h = 1.2 * (m / rho).cbrt();
        parts.push(x * f, y * f, z * f, 0.0, 0.0, 0.0, m, h, 0.05);
    }
    InitialConditions {
        parts,
        bbox,
        eos: Eos::ideal_monatomic(),
        gravity: true,
        name: "EvrardCollapse",
    }
}

/// Sedov-Taylor blast wave: a uniform, cold, periodic medium with energy
/// `e0` injected into the central smoothing volume. The classic strong-shock
/// validation problem SPH-EXA ships alongside the Table I workloads; the
/// shock radius follows the self-similar law `r_s(t) ~ (e0 t^2 / rho)^(1/5)`.
pub fn sedov(n_side: usize, e0: f64) -> InitialConditions {
    assert!(n_side >= 4);
    assert!(e0 > 0.0);
    let bbox = Box3::unit_periodic();
    let spacing = 1.0 / n_side as f64;
    let n3 = n_side.pow(3);
    let m = 1.0 / n3 as f64; // unit background density
    let h = 1.3 * spacing;
    let mut parts = Particles::new();
    // Background at a tiny internal energy (cold).
    for ix in 0..n_side {
        for iy in 0..n_side {
            for iz in 0..n_side {
                parts.push(
                    (ix as f64 + 0.5) * spacing,
                    (iy as f64 + 0.5) * spacing,
                    (iz as f64 + 0.5) * spacing,
                    0.0,
                    0.0,
                    0.0,
                    m,
                    h,
                    1e-6,
                );
            }
        }
    }
    // Deposit e0 into the particles inside the central kernel volume,
    // weighted by the kernel (the standard smoothed point-explosion setup).
    let kernel = crate::kernels::Kernel::CubicSpline;
    let center = 0.5;
    let r_dep = kernel.support(h);
    let mut wsum = 0.0;
    let weights: Vec<f64> = (0..parts.len())
        .map(|i| {
            let d2 = bbox.dist2(parts.x[i], parts.y[i], parts.z[i], center, center, center);
            if d2 < r_dep * r_dep {
                let w = kernel.w(d2.sqrt(), h);
                wsum += w * parts.m[i];
                w
            } else {
                0.0
            }
        })
        .collect();
    assert!(wsum > 0.0, "deposition volume must contain particles");
    for (i, w) in weights.iter().enumerate() {
        if *w > 0.0 {
            parts.u[i] += e0 * w / wsum;
        }
    }
    InitialConditions {
        parts,
        bbox,
        eos: Eos::ideal_monatomic(),
        gravity: false,
        name: "SedovBlast",
    }
}

/// Kelvin–Helmholtz shear layer: a dense band (`rho = 2`) moving `+x`
/// through a light medium (`rho = 1`) moving `-x` in a periodic unit box, in
/// pressure equilibrium, with a seeded sinusoidal transverse perturbation at
/// both interfaces. The classic mixing-layer instability problem; shear
/// feeds the perturbation, so transverse kinetic energy grows from the seed.
pub fn kelvin_helmholtz(n_side: usize, seed: u64) -> InitialConditions {
    assert!(n_side >= 4);
    let bbox = Box3::unit_periodic();
    let mut rng = StdRng::seed_from_u64(seed);
    let spacing = 1.0 / n_side as f64;
    let n3 = n_side.pow(3);
    // Unit background density; band particles carry double mass on the same
    // lattice, giving rho = 2 inside |y - 0.5| < 0.25.
    let m0 = 1.0 / n3 as f64;
    let h = 1.3 * spacing;
    // Pressure equilibrium across the band: P0 = (gamma - 1) rho u.
    let p0 = 2.5;
    let gamma = 5.0 / 3.0;
    // Transverse seed: two interface-localized sine modes.
    let amp = 0.1;
    let sigma = 0.05;
    let shear = 0.5;

    let mut parts = Particles::new();
    for ix in 0..n_side {
        for iy in 0..n_side {
            for iz in 0..n_side {
                let jitter = |rng: &mut StdRng| (rng.random::<f64>() - 0.5) * 0.1 * spacing;
                let x = (ix as f64 + 0.5) * spacing + jitter(&mut rng);
                let y = (iy as f64 + 0.5) * spacing + jitter(&mut rng);
                let z = (iz as f64 + 0.5) * spacing + jitter(&mut rng);
                let (x, y, z) = bbox.wrap(x, y, z);
                let in_band = (y - 0.5).abs() < 0.25;
                let (m, vx) = if in_band {
                    (2.0 * m0, shear)
                } else {
                    (m0, -shear)
                };
                let rho = if in_band { 2.0 } else { 1.0 };
                let u = p0 / ((gamma - 1.0) * rho);
                let vy = amp
                    * (std::f64::consts::TAU * 2.0 * x).sin()
                    * ((-(y - 0.25).powi(2) / (2.0 * sigma * sigma)).exp()
                        + (-(y - 0.75).powi(2) / (2.0 * sigma * sigma)).exp());
                parts.push(x, y, z, vx, vy, 0.0, m, h, u);
            }
        }
    }
    InitialConditions {
        parts,
        bbox,
        eos: Eos::ideal_monatomic(),
        gravity: false,
        name: "KelvinHelmholtz",
    }
}

/// Rotating self-gravitating disk: a thin cold cylinder (M = R = G = 1) of
/// uniform surface density on near-circular orbits against its own enclosed
/// mass. Rotation support keeps it from collapsing; self-gravity keeps it
/// from flying apart — angular momentum and the radial mass profile are the
/// conserved observables.
pub fn rotating_disk(n_side: usize) -> InitialConditions {
    assert!(n_side >= 8);
    let bbox = Box3::cube(-2.0, 2.0, false);
    let spacing = 2.0 / n_side as f64;
    // Keep one or two lattice planes of thickness around the midplane.
    let half_thickness = (0.12f64).max(0.6 * spacing);
    let mut raw = Vec::new();
    for ix in 0..n_side {
        for iy in 0..n_side {
            for iz in 0..n_side {
                let x = -1.0 + (ix as f64 + 0.5) * spacing;
                let y = -1.0 + (iy as f64 + 0.5) * spacing;
                let z = -1.0 + (iz as f64 + 0.5) * spacing;
                let r = (x * x + y * y).sqrt();
                if r <= 1.0 && r > 0.0 && z.abs() <= half_thickness {
                    raw.push((x, y, z, r));
                }
            }
        }
    }
    let n = raw.len();
    let m = 1.0 / n as f64;
    let mut parts = Particles::new();
    for (x, y, z, r) in raw {
        // Uniform surface density: M(<r) = r^2. Circular speed against the
        // enclosed mass, softened at the centre so inner orbits stay bound.
        let soft = 0.15;
        let v_c = (r * r / (r * r + soft * soft).sqrt()).sqrt();
        let (vx, vy) = (-v_c * y / r, v_c * x / r);
        let h = 1.4 * spacing;
        parts.push(x, y, z, vx, vy, 0.0, m, h, 0.05);
    }
    InitialConditions {
        parts,
        bbox,
        eos: Eos::ideal_monatomic(),
        gravity: true,
        name: "RotatingDisk",
    }
}

/// Sod shock tube in a periodic unit box (the wind-tunnel workload): a hot
/// dense left state (`rho = 1`, `P = 1`) against a cold rarefied right state
/// (`rho = 0.25`, `P = 0.1`) at rest. The interface at `x = 0.5` launches a
/// rightward shock plus contact and a leftward rarefaction; the wrapped
/// interface at `x = 0/1` mirrors it.
pub fn sod(n_side: usize) -> InitialConditions {
    assert!(n_side >= 4);
    let bbox = Box3::unit_periodic();
    let spacing = 1.0 / n_side as f64;
    let n3 = n_side.pow(3);
    let m0 = 1.0 / n3 as f64;
    let h = 1.3 * spacing;
    let gamma = 5.0 / 3.0;
    let mut parts = Particles::new();
    for ix in 0..n_side {
        for iy in 0..n_side {
            for iz in 0..n_side {
                let x = (ix as f64 + 0.5) * spacing;
                let y = (iy as f64 + 0.5) * spacing;
                let z = (iz as f64 + 0.5) * spacing;
                // Equal spacing, unequal mass: density ratio 4 from mass.
                let left = x < 0.5;
                let (rho, p) = if left { (1.0, 1.0) } else { (0.25, 0.1) };
                let u = p / ((gamma - 1.0) * rho);
                parts.push(x, y, z, 0.0, 0.0, 0.0, m0 * rho, h, u);
            }
        }
    }
    InitialConditions {
        parts,
        bbox,
        eos: Eos::ideal_monatomic(),
        gravity: false,
        name: "SodShockTube",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turbulence_ic_has_requested_mach_number() {
        let ic = subsonic_turbulence(10, 0.3, 7);
        let n = ic.parts.len() as f64;
        let rms = (ic
            .parts
            .vx
            .iter()
            .zip(&ic.parts.vy)
            .zip(&ic.parts.vz)
            .map(|((vx, vy), vz)| vx * vx + vy * vy + vz * vz)
            .sum::<f64>()
            / n)
            .sqrt();
        assert!((rms - 0.3).abs() < 1e-9, "rms Mach {rms}");
        assert!(!ic.gravity);
        assert_eq!(ic.parts.len(), 1000);
    }

    #[test]
    fn turbulence_velocity_field_is_roughly_solenoidal() {
        // Net momentum of a solenoidal field on a symmetric lattice ~ 0
        // relative to the velocity scale.
        let ic = subsonic_turbulence(12, 0.5, 3);
        let n = ic.parts.len() as f64;
        let px: f64 = ic.parts.vx.iter().sum::<f64>() / n;
        let py: f64 = ic.parts.vy.iter().sum::<f64>() / n;
        let pz: f64 = ic.parts.vz.iter().sum::<f64>() / n;
        let bulk = (px * px + py * py + pz * pz).sqrt();
        assert!(bulk < 0.25, "bulk drift {bulk} too large vs Mach 0.5");
    }

    #[test]
    fn turbulence_particles_inside_periodic_box() {
        let ic = subsonic_turbulence(8, 0.2, 1);
        for i in 0..ic.parts.len() {
            assert!(ic.parts.x[i] >= 0.0 && ic.parts.x[i] < 1.0 + 1e-12);
            assert!(ic.parts.y[i] >= 0.0 && ic.parts.y[i] < 1.0 + 1e-12);
            assert!(ic.parts.z[i] >= 0.0 && ic.parts.z[i] < 1.0 + 1e-12);
        }
    }

    #[test]
    fn evrard_ic_total_mass_and_radius() {
        let ic = evrard(14);
        assert!(ic.gravity);
        assert!((ic.parts.total_mass() - 1.0).abs() < 1e-9);
        for i in 0..ic.parts.len() {
            let r = (ic.parts.x[i].powi(2) + ic.parts.y[i].powi(2) + ic.parts.z[i].powi(2)).sqrt();
            assert!(r <= 1.0 + 1e-9, "particle outside the sphere: r = {r}");
            assert_eq!(ic.parts.u[i], 0.05, "cold gas");
        }
    }

    #[test]
    fn evrard_density_profile_is_centrally_concentrated() {
        let ic = evrard(16);
        // Count particles inside r<0.25 vs a shell of equal volume further
        // out; the 1/r profile concentrates mass at the centre relative to
        // uniform: M(<r) = r^2, so M(<0.25) ~ 6% of the mass in ~1.6% of the
        // volume.
        let inner = (0..ic.parts.len())
            .filter(|&i| {
                ic.parts.x[i].powi(2) + ic.parts.y[i].powi(2) + ic.parts.z[i].powi(2) < 0.25 * 0.25
            })
            .count() as f64;
        let frac = inner / ic.parts.len() as f64;
        assert!(
            frac > 0.03,
            "central mass fraction {frac} too small for 1/r"
        );
        assert!(frac < 0.15, "central mass fraction {frac} too large");
    }

    #[test]
    fn sedov_ic_deposits_the_requested_energy() {
        let e0 = 1.0;
        let ic = sedov(12, e0);
        let total_internal: f64 = (0..ic.parts.len())
            .map(|i| ic.parts.m[i] * ic.parts.u[i])
            .sum();
        // Background contributes ~1e-6; the deposit dominates.
        assert!(
            (total_internal - e0).abs() / e0 < 1e-3,
            "E = {total_internal}"
        );
        // Energy is centrally concentrated.
        let central = (0..ic.parts.len())
            .filter(|&i| {
                ic.parts.x[i] > 0.3
                    && ic.parts.x[i] < 0.7
                    && ic.parts.y[i] > 0.3
                    && ic.parts.y[i] < 0.7
                    && ic.parts.z[i] > 0.3
                    && ic.parts.z[i] < 0.7
            })
            .map(|i| ic.parts.m[i] * ic.parts.u[i])
            .sum::<f64>();
        assert!(central / total_internal > 0.99);
        assert!(!ic.gravity);
    }

    #[test]
    fn evrard_smoothing_grows_outward() {
        let ic = evrard(14);
        let r_of = |i: usize| {
            (ic.parts.x[i].powi(2) + ic.parts.y[i].powi(2) + ic.parts.z[i].powi(2)).sqrt()
        };
        // Compare mean h of inner and outer thirds.
        let mut inner = Vec::new();
        let mut outer = Vec::new();
        for i in 0..ic.parts.len() {
            if r_of(i) < 0.33 {
                inner.push(ic.parts.h[i]);
            } else if r_of(i) > 0.66 {
                outer.push(ic.parts.h[i]);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&outer) > mean(&inner),
            "outer h {} should exceed inner h {}",
            mean(&outer),
            mean(&inner)
        );
    }

    #[test]
    fn kelvin_helmholtz_is_in_pressure_equilibrium_with_counterflow() {
        let ic = kelvin_helmholtz(10, 42);
        assert!(!ic.gravity);
        assert_eq!(ic.parts.len(), 1000);
        let gamma = 5.0 / 3.0;
        let mut band_px = 0.0;
        let mut out_px = 0.0;
        for i in 0..ic.parts.len() {
            let in_band = (ic.parts.y[i] - 0.5).abs() < 0.25;
            let rho = if in_band { 2.0 } else { 1.0 };
            let p = (gamma - 1.0) * rho * ic.parts.u[i];
            assert!((p - 2.5).abs() < 1e-9, "pressure {p} off equilibrium");
            if in_band {
                band_px += ic.parts.m[i] * ic.parts.vx[i];
            } else {
                out_px += ic.parts.m[i] * ic.parts.vx[i];
            }
        }
        assert!(band_px > 0.0, "band must stream +x");
        assert!(out_px < 0.0, "ambient must stream -x");
        // The transverse seed is small relative to the shear.
        let vy_rms =
            (ic.parts.vy.iter().map(|v| v * v).sum::<f64>() / ic.parts.len() as f64).sqrt();
        assert!(vy_rms > 0.0 && vy_rms < 0.1, "seed rms {vy_rms}");
    }

    #[test]
    fn rotating_disk_is_thin_and_rotation_supported() {
        let ic = rotating_disk(12);
        assert!(ic.gravity);
        assert!((ic.parts.total_mass() - 1.0).abs() < 1e-9);
        let mut lz = 0.0;
        for i in 0..ic.parts.len() {
            let (x, y, z) = (ic.parts.x[i], ic.parts.y[i], ic.parts.z[i]);
            assert!((x * x + y * y).sqrt() <= 1.0 + 1e-9);
            assert!(z.abs() <= 0.2, "disk should be thin, |z| = {}", z.abs());
            lz += ic.parts.m[i] * (x * ic.parts.vy[i] - y * ic.parts.vx[i]);
        }
        // Uniform-surface-density disk on circular orbits has Lz of order
        // integral r v_c dM ~ 0.5; sign fixed by the +z rotation sense.
        assert!(lz > 0.2, "disk angular momentum {lz} too small");
    }

    #[test]
    fn sod_ic_has_the_textbook_density_and_pressure_ratios() {
        let ic = sod(10);
        assert!(!ic.gravity);
        let gamma = 5.0 / 3.0;
        let (mut m_left, mut m_right) = (0.0, 0.0);
        for i in 0..ic.parts.len() {
            assert_eq!(ic.parts.vx[i], 0.0, "both states start at rest");
            let left = ic.parts.x[i] < 0.5;
            let rho = if left { 1.0 } else { 0.25 };
            let p = (gamma - 1.0) * rho * ic.parts.u[i];
            let want = if left { 1.0 } else { 0.1 };
            assert!((p - want).abs() < 1e-9, "pressure {p}, want {want}");
            if left {
                m_left += ic.parts.m[i];
            } else {
                m_right += ic.parts.m[i];
            }
        }
        // Same particle count per side, 4x the mass on the left.
        assert!((m_left / m_right - 4.0).abs() < 1e-9);
    }
}
