//! SPH smoothing kernels (3D): cubic spline (M4) and Wendland C6.
//!
//! SPH-EXA uses sinc-family kernels; the cubic spline and Wendland C6 span
//! the same qualitative range (compact support `2h`, normalized, monotone)
//! and are the standard choices in the codes the paper cites (\[5\]–\[8\]).

use serde::{Deserialize, Serialize};

/// Kernel selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Kernel {
    /// Monaghan & Lattanzio M4 cubic spline.
    CubicSpline,
    /// Wendland C6 — higher order, resistant to pairing instability.
    WendlandC6,
    /// Sinc^5 kernel — the harmonic (sinc-family) kernel SPH-EXA actually
    /// ships (Cabezón et al.), exponent n = 5.
    Sinc5,
}

/// Normalization of the sinc^5 kernel: `1 / (4 pi I)` with
/// `I = integral_0^2 q^2 sinc(pi q / 2)^5 dq` (computed numerically).
const SINC5_SIGMA: f64 = 0.617_012_654_222_673_5;

#[inline]
fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-8 {
        1.0 - x * x / 6.0
    } else {
        x.sin() / x
    }
}

/// d/dx sinc(x) = (x cos x - sin x) / x^2.
#[inline]
fn dsinc(x: f64) -> f64 {
    if x.abs() < 1e-6 {
        -x / 3.0
    } else {
        (x * x.cos() - x.sin()) / (x * x)
    }
}

impl Kernel {
    /// Kernel value `W(r, h)`. Support radius is `2h`: zero at and beyond.
    pub fn w(self, r: f64, h: f64) -> f64 {
        debug_assert!(h > 0.0);
        let q = r / h;
        match self {
            Kernel::CubicSpline => {
                // sigma_3D = 1/(pi h^3), support q in [0, 2].
                let sigma = 1.0 / (std::f64::consts::PI * h * h * h);
                if q < 1.0 {
                    sigma * (1.0 - 1.5 * q * q + 0.75 * q * q * q)
                } else if q < 2.0 {
                    let t = 2.0 - q;
                    sigma * 0.25 * t * t * t
                } else {
                    0.0
                }
            }
            Kernel::WendlandC6 => {
                // 3D Wendland C6 on support q in [0, 2]:
                // W = sigma (1-q/2)^8 (4q^3 + 6.25q^2 + 4q + 1),
                // sigma = 1365/(512 pi h^3).
                if q >= 2.0 {
                    return 0.0;
                }
                let sigma = 1365.0 / (512.0 * std::f64::consts::PI * h * h * h);
                let om = 1.0 - 0.5 * q;
                let om2 = om * om;
                let om8 = om2 * om2 * om2 * om2;
                sigma * om8 * (4.0 * q * q * q + 6.25 * q * q + 4.0 * q + 1.0)
            }
            Kernel::Sinc5 => {
                if q >= 2.0 {
                    return 0.0;
                }
                let s = sinc(std::f64::consts::FRAC_PI_2 * q);
                SINC5_SIGMA / (h * h * h) * s.powi(5)
            }
        }
    }

    /// Radial derivative `dW/dr` (non-positive everywhere).
    pub fn dw_dr(self, r: f64, h: f64) -> f64 {
        debug_assert!(h > 0.0);
        let q = r / h;
        match self {
            Kernel::CubicSpline => {
                let sigma = 1.0 / (std::f64::consts::PI * h * h * h);
                let dq = 1.0 / h;
                if q < 1.0 {
                    sigma * (-3.0 * q + 2.25 * q * q) * dq
                } else if q < 2.0 {
                    let t = 2.0 - q;
                    sigma * (-0.75 * t * t) * dq
                } else {
                    0.0
                }
            }
            Kernel::WendlandC6 => {
                if q >= 2.0 {
                    return 0.0;
                }
                let sigma = 1365.0 / (512.0 * std::f64::consts::PI * h * h * h);
                let om = 1.0 - 0.5 * q;
                let om2 = om * om;
                let om7 = om2 * om2 * om2 * om;
                let poly = 4.0 * q * q * q + 6.25 * q * q + 4.0 * q + 1.0;
                let dpoly = 12.0 * q * q + 12.5 * q + 4.0;
                let om8 = om7 * om;
                sigma * (om8 * dpoly - 4.0 * om7 * poly) / h
            }
            Kernel::Sinc5 => {
                if q >= 2.0 {
                    return 0.0;
                }
                let a = std::f64::consts::FRAC_PI_2;
                let s = sinc(a * q);
                // dW/dr = sigma/h^3 * 5 s^4 * dsinc(a q) * a / h
                SINC5_SIGMA / (h * h * h) * 5.0 * s.powi(4) * dsinc(a * q) * a / h
            }
        }
    }

    /// Derivative with respect to `h` at fixed `r` — the grad-h correction
    /// term. Obtained from the scaling identity `W = h^-3 f(r/h)`:
    /// `dW/dh = -(3 W + r dW/dr) / h`.
    pub fn dw_dh(self, r: f64, h: f64) -> f64 {
        -(3.0 * self.w(r, h) + r * self.dw_dr(r, h)) / h
    }

    /// Support radius: the distance beyond which the kernel is exactly zero.
    pub fn support(self, h: f64) -> f64 {
        2.0 * h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const KERNELS: [Kernel; 3] = [Kernel::CubicSpline, Kernel::WendlandC6, Kernel::Sinc5];

    /// Numeric radial integral of `4 pi r^2 W(r)` — must be ~1.
    fn norm(k: Kernel, h: f64) -> f64 {
        let n = 20_000;
        let rmax = k.support(h);
        let dr = rmax / n as f64;
        (0..n)
            .map(|i| {
                let r = (i as f64 + 0.5) * dr;
                4.0 * std::f64::consts::PI * r * r * k.w(r, h) * dr
            })
            .sum()
    }

    #[test]
    fn kernels_are_normalized() {
        for k in KERNELS {
            for h in [0.5, 1.0, 2.3] {
                let m = norm(k, h);
                assert!((m - 1.0).abs() < 1e-3, "{k:?} h={h}: integral {m}");
            }
        }
    }

    #[test]
    fn compact_support_at_2h() {
        for k in KERNELS {
            assert_eq!(k.w(2.0, 1.0), 0.0);
            assert_eq!(k.w(2.5, 1.0), 0.0);
            assert_eq!(k.dw_dr(2.0, 1.0), 0.0);
            assert!(k.w(1.999, 1.0) >= 0.0);
        }
    }

    #[test]
    fn kernel_maximum_at_center() {
        for k in KERNELS {
            let w0 = k.w(0.0, 1.0);
            assert!(w0 > 0.0);
            assert!(k.w(0.5, 1.0) < w0);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for k in KERNELS {
            for r in [0.1, 0.5, 0.9, 1.1, 1.7] {
                let h = 1.0;
                let eps = 1e-6;
                let fd = (k.w(r + eps, h) - k.w(r - eps, h)) / (2.0 * eps);
                let an = k.dw_dr(r, h);
                assert!((fd - an).abs() < 1e-5, "{k:?} r={r}: fd {fd} vs {an}");
            }
        }
    }

    #[test]
    fn dh_derivative_matches_finite_difference() {
        for k in KERNELS {
            for (r, h) in [(0.3, 1.0), (1.2, 1.0), (0.7, 0.8)] {
                let eps = 1e-6;
                let fd = (k.w(r, h + eps) - k.w(r, h - eps)) / (2.0 * eps);
                let an = k.dw_dh(r, h);
                assert!((fd - an).abs() < 1e-4, "{k:?} r={r} h={h}: fd {fd} vs {an}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_kernel_nonnegative_and_derivative_nonpositive(
            r in 0.0f64..3.0, h in 0.1f64..3.0
        ) {
            for k in KERNELS {
                prop_assert!(k.w(r, h) >= 0.0);
                prop_assert!(k.dw_dr(r, h) <= 1e-12);
            }
        }

        #[test]
        fn prop_kernel_scales_as_h_cubed(r in 0.0f64..1.9, s in 0.5f64..2.0) {
            // W(s r, s h) = W(r, h) / s^3
            for k in KERNELS {
                let lhs = k.w(r * s, s);
                let rhs = k.w(r, 1.0) / (s * s * s);
                prop_assert!((lhs - rhs).abs() < 1e-9 * rhs.abs().max(1.0));
            }
        }
    }
}
