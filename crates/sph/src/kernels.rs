//! SPH smoothing kernels (3D): cubic spline (M4) and Wendland C6.
//!
//! SPH-EXA uses sinc-family kernels; the cubic spline and Wendland C6 span
//! the same qualitative range (compact support `2h`, normalized, monotone)
//! and are the standard choices in the codes the paper cites (\[5\]–\[8\]).

use serde::{Deserialize, Serialize};

/// Kernel selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Kernel {
    /// Monaghan & Lattanzio M4 cubic spline.
    CubicSpline,
    /// Wendland C6 — higher order, resistant to pairing instability.
    WendlandC6,
    /// Sinc^5 kernel — the harmonic (sinc-family) kernel SPH-EXA actually
    /// ships (Cabezón et al.), exponent n = 5.
    Sinc5,
}

/// Normalization of the sinc^5 kernel: `1 / (4 pi I)` with
/// `I = integral_0^2 q^2 sinc(pi q / 2)^5 dq` (computed numerically).
const SINC5_SIGMA: f64 = 0.617_012_654_222_673_5;

#[inline]
fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-8 {
        1.0 - x * x / 6.0
    } else {
        x.sin() / x
    }
}

/// d/dx sinc(x) = (x cos x - sin x) / x^2.
#[inline]
fn dsinc(x: f64) -> f64 {
    if x.abs() < 1e-6 {
        -x / 3.0
    } else {
        (x * x.cos() - x.sin()) / (x * x)
    }
}

/// `(sinc(x), dsinc(x))` sharing one `sin` + one `cos` call. Each output
/// reproduces its standalone function bit-for-bit: the branch thresholds
/// and every arithmetic expression are kept verbatim (`sin`/`cos` are
/// correctly rounded for a given input, so hoisting the calls cannot
/// change the result) — only the redundant second `sin` is eliminated.
#[inline]
fn sinc_dsinc(x: f64) -> (f64, f64) {
    let ax = x.abs();
    if ax < 1e-8 {
        // Both series branches: |x| < 1e-8 implies |x| < 1e-6.
        return (1.0 - x * x / 6.0, -x / 3.0);
    }
    let sin_x = x.sin();
    let s = sin_x / x;
    let ds = if ax < 1e-6 {
        -x / 3.0
    } else {
        (x * x.cos() - sin_x) / (x * x)
    };
    (s, ds)
}

impl Kernel {
    /// Kernel value `W(r, h)`. Support radius is `2h`: zero at and beyond.
    pub fn w(self, r: f64, h: f64) -> f64 {
        debug_assert!(h > 0.0);
        let q = r / h;
        match self {
            Kernel::CubicSpline => {
                // sigma_3D = 1/(pi h^3), support q in [0, 2].
                let sigma = 1.0 / (std::f64::consts::PI * h * h * h);
                if q < 1.0 {
                    sigma * (1.0 - 1.5 * q * q + 0.75 * q * q * q)
                } else if q < 2.0 {
                    let t = 2.0 - q;
                    sigma * 0.25 * t * t * t
                } else {
                    0.0
                }
            }
            Kernel::WendlandC6 => {
                // 3D Wendland C6 on support q in [0, 2]:
                // W = sigma (1-q/2)^8 (4q^3 + 6.25q^2 + 4q + 1),
                // sigma = 1365/(512 pi h^3).
                if q >= 2.0 {
                    return 0.0;
                }
                let sigma = 1365.0 / (512.0 * std::f64::consts::PI * h * h * h);
                let om = 1.0 - 0.5 * q;
                let om2 = om * om;
                let om8 = om2 * om2 * om2 * om2;
                sigma * om8 * (4.0 * q * q * q + 6.25 * q * q + 4.0 * q + 1.0)
            }
            Kernel::Sinc5 => {
                if q >= 2.0 {
                    return 0.0;
                }
                let s = sinc(std::f64::consts::FRAC_PI_2 * q);
                SINC5_SIGMA / (h * h * h) * s.powi(5)
            }
        }
    }

    /// Radial derivative `dW/dr` (non-positive everywhere).
    pub fn dw_dr(self, r: f64, h: f64) -> f64 {
        debug_assert!(h > 0.0);
        let q = r / h;
        match self {
            Kernel::CubicSpline => {
                let sigma = 1.0 / (std::f64::consts::PI * h * h * h);
                let dq = 1.0 / h;
                if q < 1.0 {
                    sigma * (-3.0 * q + 2.25 * q * q) * dq
                } else if q < 2.0 {
                    let t = 2.0 - q;
                    sigma * (-0.75 * t * t) * dq
                } else {
                    0.0
                }
            }
            Kernel::WendlandC6 => {
                if q >= 2.0 {
                    return 0.0;
                }
                let sigma = 1365.0 / (512.0 * std::f64::consts::PI * h * h * h);
                let om = 1.0 - 0.5 * q;
                let om2 = om * om;
                let om7 = om2 * om2 * om2 * om;
                let poly = 4.0 * q * q * q + 6.25 * q * q + 4.0 * q + 1.0;
                let dpoly = 12.0 * q * q + 12.5 * q + 4.0;
                let om8 = om7 * om;
                sigma * (om8 * dpoly - 4.0 * om7 * poly) / h
            }
            Kernel::Sinc5 => {
                if q >= 2.0 {
                    return 0.0;
                }
                let a = std::f64::consts::FRAC_PI_2;
                let s = sinc(a * q);
                // dW/dr = sigma/h^3 * 5 s^4 * dsinc(a q) * a / h
                SINC5_SIGMA / (h * h * h) * 5.0 * s.powi(4) * dsinc(a * q) * a / h
            }
        }
    }

    /// Derivative with respect to `h` at fixed `r` — the grad-h correction
    /// term. Obtained from the scaling identity `W = h^-3 f(r/h)`:
    /// `dW/dh = -(3 W + r dW/dr) / h`.
    pub fn dw_dh(self, r: f64, h: f64) -> f64 {
        -(3.0 * self.w(r, h) + r * self.dw_dr(r, h)) / h
    }

    /// Fused `(W, dW/dr)` — bit-identical to the separate calls, sharing
    /// the normalization, the `q` polynomials' common subterms, and (for
    /// [`Kernel::Sinc5`]) a single `sin` evaluation.
    ///
    /// Bit-identity discipline: every expression below is copied verbatim
    /// from [`Kernel::w`] / [`Kernel::dw_dr`], including Wendland's two
    /// *different* `om^8` association orders (`w` builds it from `om2`
    /// squarings, `dw_dr` as `om7 * om`) — only values that are exactly
    /// shared (same expression, same inputs) are hoisted.
    pub fn w_and_dw_dr(self, r: f64, h: f64) -> (f64, f64) {
        debug_assert!(h > 0.0);
        let q = r / h;
        match self {
            Kernel::CubicSpline => {
                let sigma = 1.0 / (std::f64::consts::PI * h * h * h);
                let dq = 1.0 / h;
                if q < 1.0 {
                    (
                        sigma * (1.0 - 1.5 * q * q + 0.75 * q * q * q),
                        sigma * (-3.0 * q + 2.25 * q * q) * dq,
                    )
                } else if q < 2.0 {
                    let t = 2.0 - q;
                    (sigma * 0.25 * t * t * t, sigma * (-0.75 * t * t) * dq)
                } else {
                    (0.0, 0.0)
                }
            }
            Kernel::WendlandC6 => {
                if q >= 2.0 {
                    return (0.0, 0.0);
                }
                let sigma = 1365.0 / (512.0 * std::f64::consts::PI * h * h * h);
                let om = 1.0 - 0.5 * q;
                let om2 = om * om;
                let poly = 4.0 * q * q * q + 6.25 * q * q + 4.0 * q + 1.0;
                // `w`'s association order for om^8:
                let om8_w = om2 * om2 * om2 * om2;
                // `dw_dr`'s: om^7 then * om.
                let om7 = om2 * om2 * om2 * om;
                let dpoly = 12.0 * q * q + 12.5 * q + 4.0;
                let om8_d = om7 * om;
                (
                    sigma * om8_w * poly,
                    sigma * (om8_d * dpoly - 4.0 * om7 * poly) / h,
                )
            }
            Kernel::Sinc5 => {
                if q >= 2.0 {
                    return (0.0, 0.0);
                }
                let a = std::f64::consts::FRAC_PI_2;
                let (s, ds) = sinc_dsinc(a * q);
                (
                    SINC5_SIGMA / (h * h * h) * s.powi(5),
                    SINC5_SIGMA / (h * h * h) * 5.0 * s.powi(4) * ds * a / h,
                )
            }
        }
    }

    /// Fused `(W, dW/dh)` — bit-identical to the separate calls; see
    /// [`Kernel::w_and_dw_dr`] for the sharing discipline. The density sweep
    /// evaluates both per pair; fusing halves the kernel work (and for
    /// [`Kernel::Sinc5`] cuts four trig calls to two).
    pub fn w_and_dw_dh(self, r: f64, h: f64) -> (f64, f64) {
        let (w, dw_dr) = self.w_and_dw_dr(r, h);
        (w, -(3.0 * w + r * dw_dr) / h)
    }

    /// Support radius: the distance beyond which the kernel is exactly zero.
    pub fn support(self, h: f64) -> f64 {
        2.0 * h
    }
}

/// A kernel with its per-`h` normalization hoisted, evaluating whole
/// distance buffers at once — the blocked sweeps' row-level evaluator.
///
/// Every scalar kernel call recomputes `sigma = f(h)` and `1/h` (two
/// divisions); within one CSR row all evaluations against particle `i`
/// share the same `h`, so those divisions are paid once per row here. The
/// hoisted values are computed by the *verbatim* expressions the scalar
/// functions use (same inputs, same operations → same bits), and the
/// per-lane bodies below are written in branch-free select form: both
/// polynomial branches are evaluated and the scalar path's strict
/// comparisons pick one. Selection never alters a value, and the remaining
/// per-lane division `q = r/h` is IEEE-correctly rounded whether issued
/// scalar or SIMD — so every lane reproduces the scalar call bit-for-bit
/// while the loop auto-vectorizes (no branches, no calls) for the
/// polynomial kernels. `Sinc5` keeps its `libm` calls per lane under
/// default features (exact, not vectorizable) and switches to the
/// [`fast`] polynomials under `fast-math` (vectorizable, not exact).
pub(crate) struct RowKernel {
    kernel: Kernel,
    h: f64,
    /// Hoisted normalization (`sigma`), per the scalar expression.
    sigma: f64,
    /// Hoisted `1/h` (the cubic spline's `dq` factor).
    dq: f64,
}

impl RowKernel {
    pub fn new(kernel: Kernel, h: f64) -> Self {
        debug_assert!(h > 0.0);
        let sigma = match kernel {
            Kernel::CubicSpline => 1.0 / (std::f64::consts::PI * h * h * h),
            Kernel::WendlandC6 => 1365.0 / (512.0 * std::f64::consts::PI * h * h * h),
            Kernel::Sinc5 => SINC5_SIGMA / (h * h * h),
        };
        RowKernel {
            kernel,
            h,
            sigma,
            dq: 1.0 / h,
        }
    }

    /// `out[k] = W(r[k], h)` — bit-identical to [`Kernel::w`] per lane
    /// (default features; `Sinc5` under `fast-math` uses [`fast::sinc_poly`]).
    /// Dispatched through an AVX2 clone when available (`cornerstone::simd`).
    pub fn w_into(&self, r: &[f64], out: &mut Vec<f64>) {
        #[cfg(target_arch = "x86_64")]
        if cornerstone::simd::avx2() {
            // SAFETY: AVX2 support was just checked; the clone has no other
            // precondition (portable body under different codegen).
            return unsafe { self.w_into_avx2(r, out) };
        }
        self.w_into_impl(r, out)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn w_into_avx2(&self, r: &[f64], out: &mut Vec<f64>) {
        self.w_into_impl(r, out)
    }

    #[inline(always)]
    fn w_into_impl(&self, r: &[f64], out: &mut Vec<f64>) {
        let n = r.len();
        out.clear();
        out.resize(n, 0.0);
        match self.kernel {
            Kernel::CubicSpline => {
                for k in 0..n {
                    let q = r[k] / self.h;
                    let w1 = self.sigma * (1.0 - 1.5 * q * q + 0.75 * q * q * q);
                    let t = 2.0 - q;
                    let w2 = self.sigma * 0.25 * t * t * t;
                    out[k] = if q < 1.0 {
                        w1
                    } else if q < 2.0 {
                        w2
                    } else {
                        0.0
                    };
                }
            }
            Kernel::WendlandC6 => {
                for k in 0..n {
                    let q = r[k] / self.h;
                    let om = 1.0 - 0.5 * q;
                    let om2 = om * om;
                    let om8 = om2 * om2 * om2 * om2;
                    let w = self.sigma * om8 * (4.0 * q * q * q + 6.25 * q * q + 4.0 * q + 1.0);
                    out[k] = if q < 2.0 { w } else { 0.0 };
                }
            }
            Kernel::Sinc5 => {
                let a = std::f64::consts::FRAC_PI_2;
                #[cfg(not(feature = "fast-math"))]
                for k in 0..n {
                    let q = r[k] / self.h;
                    out[k] = if q < 2.0 {
                        let s = sinc(a * q);
                        self.sigma * s.powi(5)
                    } else {
                        0.0
                    };
                }
                #[cfg(feature = "fast-math")]
                for k in 0..n {
                    let q = r[k] / self.h;
                    let s = fast::sinc_poly(a * q);
                    let w = self.sigma * s.powi(5);
                    out[k] = if q < 2.0 { w } else { 0.0 };
                }
            }
        }
    }

    /// `(w[k], dwdh[k]) = (W, dW/dh)(r[k], h)` — bit-identical to
    /// [`Kernel::w_and_dw_dh`] per lane under default features.
    /// Dispatched through an AVX2 clone when available (`cornerstone::simd`).
    pub fn w_and_dw_dh_into(&self, r: &[f64], w_out: &mut Vec<f64>, dwdh_out: &mut Vec<f64>) {
        #[cfg(target_arch = "x86_64")]
        if cornerstone::simd::avx2() {
            // SAFETY: AVX2 support was just checked; the clone has no other
            // precondition (portable body under different codegen).
            return unsafe { self.w_and_dw_dh_into_avx2(r, w_out, dwdh_out) };
        }
        self.w_and_dw_dh_into_impl(r, w_out, dwdh_out)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn w_and_dw_dh_into_avx2(
        &self,
        r: &[f64],
        w_out: &mut Vec<f64>,
        dwdh_out: &mut Vec<f64>,
    ) {
        self.w_and_dw_dh_into_impl(r, w_out, dwdh_out)
    }

    #[inline(always)]
    fn w_and_dw_dh_into_impl(&self, r: &[f64], w_out: &mut Vec<f64>, dwdh_out: &mut Vec<f64>) {
        let n = r.len();
        w_out.clear();
        w_out.resize(n, 0.0);
        dwdh_out.clear();
        dwdh_out.resize(n, 0.0);
        match self.kernel {
            Kernel::CubicSpline => {
                for k in 0..n {
                    let q = r[k] / self.h;
                    let w1 = self.sigma * (1.0 - 1.5 * q * q + 0.75 * q * q * q);
                    let d1 = self.sigma * (-3.0 * q + 2.25 * q * q) * self.dq;
                    let t = 2.0 - q;
                    let w2 = self.sigma * 0.25 * t * t * t;
                    let d2 = self.sigma * (-0.75 * t * t) * self.dq;
                    let (w, dw) = if q < 1.0 {
                        (w1, d1)
                    } else if q < 2.0 {
                        (w2, d2)
                    } else {
                        (0.0, 0.0)
                    };
                    w_out[k] = w;
                    dwdh_out[k] = -(3.0 * w + r[k] * dw) / self.h;
                }
            }
            Kernel::WendlandC6 => {
                for k in 0..n {
                    let q = r[k] / self.h;
                    let om = 1.0 - 0.5 * q;
                    let om2 = om * om;
                    let poly = 4.0 * q * q * q + 6.25 * q * q + 4.0 * q + 1.0;
                    let om8_w = om2 * om2 * om2 * om2;
                    let om7 = om2 * om2 * om2 * om;
                    let dpoly = 12.0 * q * q + 12.5 * q + 4.0;
                    let om8_d = om7 * om;
                    let wv = self.sigma * om8_w * poly;
                    let dv = self.sigma * (om8_d * dpoly - 4.0 * om7 * poly) / self.h;
                    let (w, dw) = if q < 2.0 { (wv, dv) } else { (0.0, 0.0) };
                    w_out[k] = w;
                    dwdh_out[k] = -(3.0 * w + r[k] * dw) / self.h;
                }
            }
            Kernel::Sinc5 => {
                let a = std::f64::consts::FRAC_PI_2;
                #[cfg(not(feature = "fast-math"))]
                for k in 0..n {
                    let q = r[k] / self.h;
                    let (w, dw) = if q < 2.0 {
                        let (s, ds) = sinc_dsinc(a * q);
                        (
                            self.sigma * s.powi(5),
                            self.sigma * 5.0 * s.powi(4) * ds * a / self.h,
                        )
                    } else {
                        (0.0, 0.0)
                    };
                    w_out[k] = w;
                    dwdh_out[k] = -(3.0 * w + r[k] * dw) / self.h;
                }
                #[cfg(feature = "fast-math")]
                for k in 0..n {
                    let q = r[k] / self.h;
                    let s = fast::sinc_poly(a * q);
                    let ds = fast::dsinc_poly(a * q);
                    let wv = self.sigma * s.powi(5);
                    let dv = self.sigma * 5.0 * s.powi(4) * ds * a / self.h;
                    let (w, dw) = if q < 2.0 { (wv, dv) } else { (0.0, 0.0) };
                    w_out[k] = w;
                    dwdh_out[k] = -(3.0 * w + r[k] * dw) / self.h;
                }
            }
        }
    }

    /// `out[k] = dW/dr(r[k], h) / r[k]` — the momentum equation's gradient
    /// prefactor. Bit-identical to `Kernel::dw_dr(r, h) / r` per lane under
    /// default features. Requires `r[k] > 0` (pair-filtered rows).
    /// Dispatched through an AVX2 clone when available (`cornerstone::simd`).
    pub fn dw_dr_over_r_into(&self, r: &[f64], out: &mut Vec<f64>) {
        #[cfg(target_arch = "x86_64")]
        if cornerstone::simd::avx2() {
            // SAFETY: AVX2 support was just checked; the clone has no other
            // precondition (portable body under different codegen).
            return unsafe { self.dw_dr_over_r_into_avx2(r, out) };
        }
        self.dw_dr_over_r_into_impl(r, out)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn dw_dr_over_r_into_avx2(&self, r: &[f64], out: &mut Vec<f64>) {
        self.dw_dr_over_r_into_impl(r, out)
    }

    #[inline(always)]
    fn dw_dr_over_r_into_impl(&self, r: &[f64], out: &mut Vec<f64>) {
        let n = r.len();
        out.clear();
        out.resize(n, 0.0);
        match self.kernel {
            Kernel::CubicSpline => {
                for k in 0..n {
                    let q = r[k] / self.h;
                    let d1 = self.sigma * (-3.0 * q + 2.25 * q * q) * self.dq;
                    let t = 2.0 - q;
                    let d2 = self.sigma * (-0.75 * t * t) * self.dq;
                    let dw = if q < 1.0 {
                        d1
                    } else if q < 2.0 {
                        d2
                    } else {
                        0.0
                    };
                    out[k] = dw / r[k];
                }
            }
            Kernel::WendlandC6 => {
                for k in 0..n {
                    let q = r[k] / self.h;
                    let om = 1.0 - 0.5 * q;
                    let om2 = om * om;
                    let om7 = om2 * om2 * om2 * om;
                    let poly = 4.0 * q * q * q + 6.25 * q * q + 4.0 * q + 1.0;
                    let dpoly = 12.0 * q * q + 12.5 * q + 4.0;
                    let om8 = om7 * om;
                    let dv = self.sigma * (om8 * dpoly - 4.0 * om7 * poly) / self.h;
                    let dw = if q < 2.0 { dv } else { 0.0 };
                    out[k] = dw / r[k];
                }
            }
            Kernel::Sinc5 => {
                let a = std::f64::consts::FRAC_PI_2;
                #[cfg(not(feature = "fast-math"))]
                for k in 0..n {
                    let q = r[k] / self.h;
                    let dw = if q < 2.0 {
                        let s = sinc(a * q);
                        self.sigma * 5.0 * s.powi(4) * dsinc(a * q) * a / self.h
                    } else {
                        0.0
                    };
                    out[k] = dw / r[k];
                }
                #[cfg(feature = "fast-math")]
                for k in 0..n {
                    let q = r[k] / self.h;
                    let s = fast::sinc_poly(a * q);
                    let dv = self.sigma * 5.0 * s.powi(4) * fast::dsinc_poly(a * q) * a / self.h;
                    let dw = if q < 2.0 { dv } else { 0.0 };
                    out[k] = dw / r[k];
                }
            }
        }
    }
}

/// `out[k] = dW/dr(r[k], h[k]) / r[k]` with a *per-lane* smoothing length —
/// the momentum equation's neighbor-side gradient. Nothing hoists (each
/// lane has its own `h`), but the select-form body keeps the loop
/// branch-free so the normalization divisions issue as SIMD divides —
/// which are IEEE-correctly rounded per lane, hence still bit-identical to
/// `Kernel::dw_dr(r, h) / r` under default features. Requires `r[k] > 0`
/// and `h[k] > 0`.
/// Dispatched through an AVX2 clone when available (`cornerstone::simd`).
pub(crate) fn dw_dr_over_r_varh_into(kernel: Kernel, r: &[f64], h: &[f64], out: &mut Vec<f64>) {
    #[cfg(target_arch = "x86_64")]
    if cornerstone::simd::avx2() {
        // SAFETY: AVX2 support was just checked; the clone has no other
        // precondition (portable body under different codegen).
        return unsafe { dw_dr_over_r_varh_into_avx2(kernel, r, h, out) };
    }
    dw_dr_over_r_varh_into_impl(kernel, r, h, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dw_dr_over_r_varh_into_avx2(kernel: Kernel, r: &[f64], h: &[f64], out: &mut Vec<f64>) {
    dw_dr_over_r_varh_into_impl(kernel, r, h, out)
}

#[inline(always)]
fn dw_dr_over_r_varh_into_impl(kernel: Kernel, r: &[f64], h: &[f64], out: &mut Vec<f64>) {
    let n = r.len();
    debug_assert_eq!(h.len(), n);
    out.clear();
    out.resize(n, 0.0);
    match kernel {
        Kernel::CubicSpline => {
            for k in 0..n {
                let hk = h[k];
                let sigma = 1.0 / (std::f64::consts::PI * hk * hk * hk);
                let dq = 1.0 / hk;
                let q = r[k] / hk;
                let d1 = sigma * (-3.0 * q + 2.25 * q * q) * dq;
                let t = 2.0 - q;
                let d2 = sigma * (-0.75 * t * t) * dq;
                let dw = if q < 1.0 {
                    d1
                } else if q < 2.0 {
                    d2
                } else {
                    0.0
                };
                out[k] = dw / r[k];
            }
        }
        Kernel::WendlandC6 => {
            for k in 0..n {
                let hk = h[k];
                let q = r[k] / hk;
                let sigma = 1365.0 / (512.0 * std::f64::consts::PI * hk * hk * hk);
                let om = 1.0 - 0.5 * q;
                let om2 = om * om;
                let om7 = om2 * om2 * om2 * om;
                let poly = 4.0 * q * q * q + 6.25 * q * q + 4.0 * q + 1.0;
                let dpoly = 12.0 * q * q + 12.5 * q + 4.0;
                let om8 = om7 * om;
                let dv = sigma * (om8 * dpoly - 4.0 * om7 * poly) / hk;
                let dw = if q < 2.0 { dv } else { 0.0 };
                out[k] = dw / r[k];
            }
        }
        Kernel::Sinc5 => {
            let a = std::f64::consts::FRAC_PI_2;
            #[cfg(not(feature = "fast-math"))]
            for k in 0..n {
                let hk = h[k];
                let q = r[k] / hk;
                let dw = if q < 2.0 {
                    let s = sinc(a * q);
                    SINC5_SIGMA / (hk * hk * hk) * 5.0 * s.powi(4) * dsinc(a * q) * a / hk
                } else {
                    0.0
                };
                out[k] = dw / r[k];
            }
            #[cfg(feature = "fast-math")]
            for k in 0..n {
                let hk = h[k];
                let q = r[k] / hk;
                let s = fast::sinc_poly(a * q);
                let dv =
                    SINC5_SIGMA / (hk * hk * hk) * 5.0 * s.powi(4) * fast::dsinc_poly(a * q) * a
                        / hk;
                let dw = if q < 2.0 { dv } else { 0.0 };
                out[k] = dw / r[k];
            }
        }
    }
}

/// Relaxed-precision kernel evaluations backing the `fast-math` feature.
///
/// [`Kernel::Sinc5`] is the only kernel whose inner math calls `libm`
/// (`sin`/`cos`); these variants replace both with truncated Maclaurin
/// polynomials in `u = x²` (Horner form), exact at `x = 0` and accurate to
/// `< 8e-9` (sinc) / `< 5e-8` (dsinc) absolute over the full support
/// `x ∈ [0, π]` — far below the SPH discretization error, but NOT
/// bit-identical to `libm`. Only the blocked sweeps' `RowKernel` batch
/// evaluators route here, and only when the `fast-math` feature is
/// enabled; the module itself is always compiled so accuracy tests run in
/// every configuration.
pub mod fast {
    use super::SINC5_SIGMA;

    /// Maclaurin coefficients of `sinc(x) = Σ (−1)^m x^{2m} / (2m+1)!` as a
    /// polynomial in `u = x²`, ascending. Nine terms: the first omitted term
    /// is `x^18/19! ≈ 7.3e-9` at `x = π`.
    const SINC_COEFFS: [f64; 9] = [
        1.0,
        -1.0 / 6.0,
        1.0 / 120.0,
        -1.0 / 5_040.0,
        1.0 / 362_880.0,
        -1.0 / 39_916_800.0,
        1.0 / 6_227_020_800.0,
        -1.0 / 1_307_674_368_000.0,
        1.0 / 355_687_428_096_000.0,
    ];

    /// Coefficients of `dsinc(x)/x = Σ (−1)^{m+1} (2m+2) u^m / (2m+3)!`,
    /// ascending in `u = x²`. Eight terms: first omitted is
    /// `18 x^16/19! ≈ 4.2e-8·x` at `x = π`.
    const DSINC_COEFFS: [f64; 8] = [
        -1.0 / 3.0,
        1.0 / 30.0,
        -1.0 / 840.0,
        1.0 / 45_360.0,
        -1.0 / 3_991_680.0,
        1.0 / 518_918_400.0,
        -1.0 / 93_405_312_000.0,
        1.0 / 22_230_464_256_000.0,
    ];

    /// Polynomial `sinc(x)`, valid on `|x| <= π` (the sinc⁵ support).
    #[inline]
    pub fn sinc_poly(x: f64) -> f64 {
        let u = x * x;
        let mut p = SINC_COEFFS[8];
        let mut m = 8;
        while m > 0 {
            m -= 1;
            p = p * u + SINC_COEFFS[m];
        }
        p
    }

    /// Polynomial `dsinc(x)`, valid on `|x| <= π`.
    #[inline]
    pub fn dsinc_poly(x: f64) -> f64 {
        let u = x * x;
        let mut p = DSINC_COEFFS[7];
        let mut m = 7;
        while m > 0 {
            m -= 1;
            p = p * u + DSINC_COEFFS[m];
        }
        x * p
    }

    /// `Sinc5` kernel value via the polynomial sinc.
    #[inline]
    pub fn sinc5_w(r: f64, h: f64) -> f64 {
        let q = r / h;
        if q >= 2.0 {
            return 0.0;
        }
        let s = sinc_poly(std::f64::consts::FRAC_PI_2 * q);
        SINC5_SIGMA / (h * h * h) * s.powi(5)
    }

    /// `Sinc5` radial derivative via the polynomial sinc/dsinc.
    #[inline]
    pub fn sinc5_dw_dr(r: f64, h: f64) -> f64 {
        let q = r / h;
        if q >= 2.0 {
            return 0.0;
        }
        let a = std::f64::consts::FRAC_PI_2;
        let s = sinc_poly(a * q);
        SINC5_SIGMA / (h * h * h) * 5.0 * s.powi(4) * dsinc_poly(a * q) * a / h
    }

    /// Fused `(W, dW/dh)` for `Sinc5` via the polynomials.
    #[inline]
    pub fn sinc5_w_and_dw_dh(r: f64, h: f64) -> (f64, f64) {
        let q = r / h;
        if q >= 2.0 {
            return (0.0, 0.0);
        }
        let a = std::f64::consts::FRAC_PI_2;
        let s = sinc_poly(a * q);
        let w = SINC5_SIGMA / (h * h * h) * s.powi(5);
        let dw_dr = SINC5_SIGMA / (h * h * h) * 5.0 * s.powi(4) * dsinc_poly(a * q) * a / h;
        (w, -(3.0 * w + r * dw_dr) / h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const KERNELS: [Kernel; 3] = [Kernel::CubicSpline, Kernel::WendlandC6, Kernel::Sinc5];

    /// Numeric radial integral of `4 pi r^2 W(r)` — must be ~1.
    fn norm(k: Kernel, h: f64) -> f64 {
        let n = 20_000;
        let rmax = k.support(h);
        let dr = rmax / n as f64;
        (0..n)
            .map(|i| {
                let r = (i as f64 + 0.5) * dr;
                4.0 * std::f64::consts::PI * r * r * k.w(r, h) * dr
            })
            .sum()
    }

    #[test]
    fn kernels_are_normalized() {
        for k in KERNELS {
            for h in [0.5, 1.0, 2.3] {
                let m = norm(k, h);
                assert!((m - 1.0).abs() < 1e-3, "{k:?} h={h}: integral {m}");
            }
        }
    }

    #[test]
    fn compact_support_at_2h() {
        for k in KERNELS {
            assert_eq!(k.w(2.0, 1.0), 0.0);
            assert_eq!(k.w(2.5, 1.0), 0.0);
            assert_eq!(k.dw_dr(2.0, 1.0), 0.0);
            assert!(k.w(1.999, 1.0) >= 0.0);
        }
    }

    #[test]
    fn kernel_maximum_at_center() {
        for k in KERNELS {
            let w0 = k.w(0.0, 1.0);
            assert!(w0 > 0.0);
            assert!(k.w(0.5, 1.0) < w0);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for k in KERNELS {
            for r in [0.1, 0.5, 0.9, 1.1, 1.7] {
                let h = 1.0;
                let eps = 1e-6;
                let fd = (k.w(r + eps, h) - k.w(r - eps, h)) / (2.0 * eps);
                let an = k.dw_dr(r, h);
                assert!((fd - an).abs() < 1e-5, "{k:?} r={r}: fd {fd} vs {an}");
            }
        }
    }

    #[test]
    fn dh_derivative_matches_finite_difference() {
        for k in KERNELS {
            for (r, h) in [(0.3, 1.0), (1.2, 1.0), (0.7, 0.8)] {
                let eps = 1e-6;
                let fd = (k.w(r, h + eps) - k.w(r, h - eps)) / (2.0 * eps);
                let an = k.dw_dh(r, h);
                assert!((fd - an).abs() < 1e-4, "{k:?} r={r} h={h}: fd {fd} vs {an}");
            }
        }
    }

    #[test]
    fn fused_evaluations_are_bit_identical_to_separate_calls() {
        // The blocked sweeps depend on this: fusing W with its derivatives
        // must not change a single bit vs the scalar path's separate calls.
        for k in KERNELS {
            for h in [0.05, 0.5, 1.0, 2.3] {
                for i in 0..=400 {
                    let r = 2.2 * h * i as f64 / 400.0; // crosses both branches + support edge
                    let (w, dw_dr) = k.w_and_dw_dr(r, h);
                    assert_eq!(w.to_bits(), k.w(r, h).to_bits(), "{k:?} w at r={r} h={h}");
                    assert_eq!(
                        dw_dr.to_bits(),
                        k.dw_dr(r, h).to_bits(),
                        "{k:?} dw_dr at r={r} h={h}"
                    );
                    let (w2, dw_dh) = k.w_and_dw_dh(r, h);
                    assert_eq!(w2.to_bits(), w.to_bits());
                    assert_eq!(
                        dw_dh.to_bits(),
                        k.dw_dh(r, h).to_bits(),
                        "{k:?} dw_dh at r={r} h={h}"
                    );
                }
            }
        }
    }

    #[cfg(not(feature = "fast-math"))]
    #[test]
    fn batch_evaluators_are_bit_identical_to_scalar_calls() {
        // The blocked sweeps' row evaluators: hoisted normalization and
        // select-form bodies must reproduce the scalar calls bit-for-bit
        // (default features; fast-math relaxes Sinc5 by design).
        for k in KERNELS {
            for h in [0.05, 0.5, 1.0, 2.3] {
                let r: Vec<f64> = (1..=401).map(|i| 2.2 * h * i as f64 / 401.0).collect();
                let hs: Vec<f64> = (0..r.len())
                    .map(|i| h * (0.9 + 0.2 * (i % 7) as f64))
                    .collect();
                let rk = RowKernel::new(k, h);
                let (mut w, mut dwdh, mut dwr) = (Vec::new(), Vec::new(), Vec::new());
                rk.w_into(&r, &mut w);
                let mut w2 = Vec::new();
                rk.w_and_dw_dh_into(&r, &mut w2, &mut dwdh);
                rk.dw_dr_over_r_into(&r, &mut dwr);
                let mut dwr_var = Vec::new();
                dw_dr_over_r_varh_into(k, &r, &hs, &mut dwr_var);
                for (i, &ri) in r.iter().enumerate() {
                    assert_eq!(w[i].to_bits(), k.w(ri, h).to_bits(), "{k:?} w at r={ri}");
                    assert_eq!(w2[i].to_bits(), w[i].to_bits());
                    assert_eq!(
                        dwdh[i].to_bits(),
                        k.dw_dh(ri, h).to_bits(),
                        "{k:?} dw_dh at r={ri}"
                    );
                    assert_eq!(
                        dwr[i].to_bits(),
                        (k.dw_dr(ri, h) / ri).to_bits(),
                        "{k:?} dw_dr/r at r={ri}"
                    );
                    assert_eq!(
                        dwr_var[i].to_bits(),
                        (k.dw_dr(ri, hs[i]) / ri).to_bits(),
                        "{k:?} varh dw_dr/r at r={ri} h={}",
                        hs[i]
                    );
                }
            }
        }
    }

    #[cfg(feature = "fast-math")]
    #[test]
    fn batch_evaluators_stay_close_to_scalar_under_fast_math() {
        // Sinc5 routes through the polynomials; the others stay exact.
        for k in KERNELS {
            let h = 0.7;
            let r: Vec<f64> = (1..=301).map(|i| 2.1 * h * i as f64 / 301.0).collect();
            let rk = RowKernel::new(k, h);
            let (mut w, mut dwdh) = (Vec::new(), Vec::new());
            rk.w_and_dw_dh_into(&r, &mut w, &mut dwdh);
            let scale = k.w(0.0, h);
            for (i, &ri) in r.iter().enumerate() {
                assert!(
                    (w[i] - k.w(ri, h)).abs() < 1e-7 * scale,
                    "{k:?} w at r={ri}"
                );
                assert!(
                    (dwdh[i] - k.dw_dh(ri, h)).abs() < 1e-6 * scale / h,
                    "{k:?} dw_dh at r={ri}"
                );
            }
        }
    }

    #[test]
    fn polynomial_sinc_matches_libm_within_tolerance() {
        for i in 0..=1000 {
            let x = std::f64::consts::PI * i as f64 / 1000.0;
            let exact = if x == 0.0 { 1.0 } else { x.sin() / x };
            assert!(
                (fast::sinc_poly(x) - exact).abs() < 8e-9,
                "sinc at {x}: {} vs {exact}",
                fast::sinc_poly(x)
            );
            let dexact = if x < 1e-6 {
                -x / 3.0
            } else {
                (x * x.cos() - x.sin()) / (x * x)
            };
            assert!(
                (fast::dsinc_poly(x) - dexact).abs() < 5e-8,
                "dsinc at {x}: {} vs {dexact}",
                fast::dsinc_poly(x)
            );
        }
    }

    #[test]
    fn fast_sinc5_kernel_stays_close_to_exact() {
        let k = Kernel::Sinc5;
        for h in [0.05, 1.0] {
            for i in 0..=300 {
                let r = 2.1 * h * i as f64 / 300.0;
                let scale = k.w(0.0, h); // kernel magnitude for relative tolerance
                assert!(
                    (fast::sinc5_w(r, h) - k.w(r, h)).abs() < 1e-7 * scale,
                    "w at r={r} h={h}"
                );
                let (wf, dhf) = fast::sinc5_w_and_dw_dh(r, h);
                assert!((wf - k.w(r, h)).abs() < 1e-7 * scale);
                assert!(
                    (dhf - k.dw_dh(r, h)).abs() < 1e-6 * scale / h,
                    "dw_dh at r={r} h={h}: {dhf} vs {}",
                    k.dw_dh(r, h)
                );
                assert!(
                    (fast::sinc5_dw_dr(r, h) - k.dw_dr(r, h)).abs() < 1e-6 * scale / h,
                    "dw_dr at r={r} h={h}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_kernel_nonnegative_and_derivative_nonpositive(
            r in 0.0f64..3.0, h in 0.1f64..3.0
        ) {
            for k in KERNELS {
                prop_assert!(k.w(r, h) >= 0.0);
                prop_assert!(k.dw_dr(r, h) <= 1e-12);
            }
        }

        #[test]
        fn prop_kernel_scales_as_h_cubed(r in 0.0f64..1.9, s in 0.5f64..2.0) {
            // W(s r, s h) = W(r, h) / s^3
            for k in KERNELS {
                let lhs = k.w(r * s, s);
                let rhs = k.w(r, 1.0) / (s * s * s);
                prop_assert!((lhs - rhs).abs() < 1e-9 * rhs.abs().max(1.0));
            }
        }
    }
}
