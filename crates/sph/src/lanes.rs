//! Cache-blocked sweep scratch: per-thread lane buffers and the ordered /
//! lane-partial accumulator backing the blocked CSR row path of the five
//! SPH sweeps.
//!
//! Each sweep processes one CSR row at a time: the row's radius-passing
//! candidates are compacted into contiguous buffers
//! ([`cornerstone::NeighborList::filter_row_into`] /
//! [`cornerstone::NeighborList::filter_pairs_into`]), per-pair quantities
//! (distances, kernel values, gradient prefactors) are evaluated as
//! branch-free passes over those buffers (see `kernels::RowKernel`), and
//! the final pass accumulates force/density terms through [`Acc`]. A row's
//! working set (a few hundred candidates × a handful of f64 channels) fits
//! comfortably in L1, so every pass streams.
//!
//! ## Bit-identity of the default accumulation
//!
//! The scalar path folds terms left-to-right starting from `0.0`
//! (`acc += t_k` / `acc -= t_k` inside the neighbor callback, in visit
//! order). The blocked accumulation pass visits the same pairs in the same
//! order and feeds the same term bits into [`Acc`], whose default
//! implementation is exactly that running fold — so the blocked path
//! reproduces the scalar result bit-for-bit. Under the `fast-math` feature
//! [`Acc`] switches to four independent lane partials combined pairwise —
//! still deterministic and thread-count independent (a pure function of
//! the row's term sequence), but a different association, hence the
//! feature gate.

use cornerstone::FilteredRow;
use std::cell::RefCell;

/// Manual vector width: 4 × f64 (one AVX2 register / two NEON registers).
pub(crate) const LANES: usize = 4;

/// Reusable per-thread scratch for one CSR row. Named buffers for the
/// always-present channels plus a generic `aux` pool the sweeps repurpose
/// (documented at each use site).
#[derive(Default)]
pub(crate) struct RowScratch {
    /// Filtered row straight from the CSR list (radius- or pair-filtered).
    pub row: FilteredRow,
    /// Pair distances `sqrt(d2)`.
    pub r: Vec<f64>,
    /// Kernel values (or gradient prefactors) per pair.
    pub w: Vec<f64>,
    /// Neighbor volume (or other per-neighbor gathered scalar).
    pub vj: Vec<f64>,
    /// General per-pair channels (`dW/dh`, `C·d` products, gathered `h_j`…).
    pub aux: [Vec<f64>; 4],
    /// Surviving row positions from a branch-free selection pass
    /// (momentum's interacting-pair compaction).
    pub idx: Vec<u32>,
}

thread_local! {
    static SCRATCH: RefCell<RowScratch> = RefCell::new(RowScratch::default());
}

/// Run `f` with this thread's row scratch. Buffers keep their capacity
/// across rows and sweeps; callers must clear/overwrite what they use.
#[inline]
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut RowScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// `out[k] = sqrt(src[k])`, evaluated in [`LANES`]-wide chunks (remainder
/// in index order). `sqrt` is correctly rounded, so chunking cannot change
/// bits — this exists purely to keep the hot loop branch-free and
/// auto-vectorizable. Dispatched through an AVX2 clone when available
/// (`cornerstone::simd`).
pub(crate) fn sqrt_into(src: &[f64], out: &mut Vec<f64>) {
    #[cfg(target_arch = "x86_64")]
    if cornerstone::simd::avx2() {
        // SAFETY: AVX2 support was just checked; the clone has no other
        // precondition (portable body under different codegen).
        return unsafe { sqrt_into_avx2(src, out) };
    }
    sqrt_into_impl(src, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sqrt_into_avx2(src: &[f64], out: &mut Vec<f64>) {
    sqrt_into_impl(src, out)
}

/// `out[k] = sqrt(dx[k]² + dy[k]² + dz[k]²)` straight from stored row
/// deltas — the scalar replay's `d2` expression (same summation order,
/// same bits) followed by the correctly-rounded `sqrt`, fused into one
/// branch-free pass. Dispatched through an AVX2 clone when available
/// (`cornerstone::simd`).
pub(crate) fn dist_into(dx: &[f64], dy: &[f64], dz: &[f64], out: &mut Vec<f64>) {
    #[cfg(target_arch = "x86_64")]
    if cornerstone::simd::avx2() {
        // SAFETY: AVX2 support was just checked; the clone has no other
        // precondition (portable body under different codegen).
        return unsafe { dist_into_avx2(dx, dy, dz, out) };
    }
    dist_into_impl(dx, dy, dz, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dist_into_avx2(dx: &[f64], dy: &[f64], dz: &[f64], out: &mut Vec<f64>) {
    dist_into_impl(dx, dy, dz, out)
}

#[inline(always)]
fn dist_into_impl(dx: &[f64], dy: &[f64], dz: &[f64], out: &mut Vec<f64>) {
    let n = dx.len();
    debug_assert_eq!(dy.len(), n);
    debug_assert_eq!(dz.len(), n);
    out.clear();
    out.resize(n, 0.0);
    for k in 0..n {
        out[k] = (dx[k] * dx[k] + dy[k] * dy[k] + dz[k] * dz[k]).sqrt();
    }
}

/// [`dist_into`], but keeping the squared distances too: `d2[k]` is the
/// scalar replay's `dx² + dy² + dz²` (same bits) and `r[k] = sqrt(d2[k])`.
/// Dispatched through an AVX2 clone when available (`cornerstone::simd`).
pub(crate) fn dist2_dist_into(
    dx: &[f64],
    dy: &[f64],
    dz: &[f64],
    d2_out: &mut Vec<f64>,
    r_out: &mut Vec<f64>,
) {
    #[cfg(target_arch = "x86_64")]
    if cornerstone::simd::avx2() {
        // SAFETY: AVX2 support was just checked; the clone has no other
        // precondition (portable body under different codegen).
        return unsafe { dist2_dist_into_avx2(dx, dy, dz, d2_out, r_out) };
    }
    dist2_dist_into_impl(dx, dy, dz, d2_out, r_out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dist2_dist_into_avx2(
    dx: &[f64],
    dy: &[f64],
    dz: &[f64],
    d2_out: &mut Vec<f64>,
    r_out: &mut Vec<f64>,
) {
    dist2_dist_into_impl(dx, dy, dz, d2_out, r_out)
}

#[inline(always)]
fn dist2_dist_into_impl(
    dx: &[f64],
    dy: &[f64],
    dz: &[f64],
    d2_out: &mut Vec<f64>,
    r_out: &mut Vec<f64>,
) {
    let n = dx.len();
    debug_assert_eq!(dy.len(), n);
    debug_assert_eq!(dz.len(), n);
    d2_out.clear();
    d2_out.resize(n, 0.0);
    r_out.clear();
    r_out.resize(n, 0.0);
    for k in 0..n {
        let q = dx[k] * dx[k] + dy[k] * dy[k] + dz[k] * dz[k];
        d2_out[k] = q;
        r_out[k] = q.sqrt();
    }
}

#[inline(always)]
fn sqrt_into_impl(src: &[f64], out: &mut Vec<f64>) {
    let n = src.len();
    out.clear();
    out.resize(n, 0.0);
    let mut k = 0;
    while k + LANES <= n {
        for l in 0..LANES {
            out[k + l] = src[k + l].sqrt();
        }
        k += LANES;
    }
    while k < n {
        out[k] = src[k].sqrt();
        k += 1;
    }
}

/// Row accumulator: `add`/`sub` a term for pair index `k`, read the total
/// with [`Acc::value`]. The default build is the scalar callback's running
/// fold (`acc += t` in visit order — `k` is ignored), bit-identical by
/// construction.
#[cfg(not(feature = "fast-math"))]
#[derive(Clone, Copy, Default)]
pub(crate) struct Acc(f64);

#[cfg(not(feature = "fast-math"))]
impl Acc {
    #[inline(always)]
    pub fn add(&mut self, _k: usize, t: f64) {
        self.0 += t;
    }
    #[inline(always)]
    pub fn sub(&mut self, _k: usize, t: f64) {
        self.0 -= t;
    }
    #[inline(always)]
    pub fn value(self) -> f64 {
        self.0
    }
}

/// `fast-math` accumulator: four independent lane partials indexed by the
/// pair index (`k mod 4`), combined `(l0 + l1) + (l2 + l3)`. Breaking the
/// serial dependence of the running fold lets the accumulation pass keep
/// four FMAs in flight; the result is still a pure (deterministic,
/// thread-count invariant) function of the row's term sequence, but a
/// different association than the scalar fold.
#[cfg(feature = "fast-math")]
#[derive(Clone, Copy, Default)]
pub(crate) struct Acc([f64; LANES]);

#[cfg(feature = "fast-math")]
impl Acc {
    #[inline(always)]
    pub fn add(&mut self, k: usize, t: f64) {
        self.0[k & (LANES - 1)] += t;
    }
    #[inline(always)]
    pub fn sub(&mut self, k: usize, t: f64) {
        self.0[k & (LANES - 1)] -= t;
    }
    #[inline(always)]
    pub fn value(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqrt_into_matches_scalar_sqrt_bitwise() {
        for n in 0..9usize {
            let src: Vec<f64> = (0..n).map(|k| 0.017 * (k * k + 1) as f64).collect();
            let mut out = Vec::new();
            sqrt_into(&src, &mut out);
            assert_eq!(out.len(), n);
            for k in 0..n {
                assert_eq!(out[k].to_bits(), src[k].sqrt().to_bits());
            }
        }
    }

    #[test]
    fn accumulator_matches_the_scalar_fold() {
        // Terms chosen to be association-sensitive (wildly varying scale).
        let terms: Vec<f64> = (0..23)
            .map(|k| (-1.0f64).powi(k) * 10f64.powi(k % 17 - 8) * (k + 1) as f64)
            .collect();
        let mut add = 0.0;
        let mut sub = 0.0;
        for &t in &terms {
            add += t;
            sub -= t;
        }
        let mut acc_add = Acc::default();
        let mut acc_sub = Acc::default();
        for (k, &t) in terms.iter().enumerate() {
            acc_add.add(k, t);
            acc_sub.sub(k, t);
        }
        #[cfg(not(feature = "fast-math"))]
        {
            assert_eq!(acc_add.value().to_bits(), add.to_bits());
            assert_eq!(acc_sub.value().to_bits(), sub.to_bits());
        }
        #[cfg(feature = "fast-math")]
        {
            let tol = 1e-12 * terms.iter().map(|t| t.abs()).sum::<f64>();
            assert!((acc_add.value() - add).abs() <= tol);
            assert!((acc_sub.value() - sub).abs() <= tol);
        }
    }

    #[test]
    fn scratch_reuses_buffers_across_calls() {
        with_scratch(|s| {
            s.r.clear();
            s.r.extend_from_slice(&[1.0, 2.0]);
        });
        with_scratch(|s| {
            // Same thread -> same scratch; previous contents still there
            // until overwritten (callers must clear).
            assert!(s.r.capacity() >= 2);
        });
    }
}
