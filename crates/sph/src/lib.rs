//! # sph — an SPH-EXA-like smoothed particle hydrodynamics framework
//!
//! A CPU reimplementation of the simulation framework the paper instruments
//! (Cavelan et al., *A smoothed particle hydrodynamics mini-app for
//! exascale*, PASC'20 — ref. \[3\]): grad-h SPH with IAD derivatives,
//! time-dependent artificial-viscosity switches, Barnes-Hut self-gravity,
//! SFC domain decomposition with halo exchange, and the two Table I
//! workloads (Subsonic Turbulence, Evrard Collapse).
//!
//! Physics runs at laptop scale; every instrumented function also carries a
//! paper-scale GPU workload model ([`FuncId::workload`]) that the
//! architecture simulator turns into virtual time and energy. The
//! [`StepObserver`] hooks around each function are the integration point for
//! the paper's contribution (energy measurement + dynamic frequency
//! scaling).

pub mod av;
pub mod conservation;
pub mod density;
pub mod eos;
pub mod funcs;
pub mod gravity;
pub mod iad;
pub mod ic;
pub mod kernels;
pub(crate) mod lanes;
pub mod momentum;
pub mod nbody;
pub mod particles;
pub mod sim;
pub mod snapshot;
pub mod timestep;
pub mod update;

pub use conservation::EnergyBudget;
pub use eos::Eos;
pub use funcs::{FuncId, WorkloadProfile};
pub use ic::{
    evrard, kelvin_helmholtz, rotating_disk, sedov, sod, subsonic_turbulence, InitialConditions,
};
pub use kernels::Kernel;
pub use nbody::{plummer, NBody, NBODY_FUNCS};
pub use particles::Particles;
pub use sim::{NeighborPath, NullObserver, SimConfig, Simulation, StepObserver, StepStats};
pub use snapshot::{decode_particles, encode_particles, fnv1a, SNAPSHOT_VERSION};
