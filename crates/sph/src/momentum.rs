//! `MomentumEnergy`: the grad-h SPH momentum and energy equations with
//! artificial viscosity — the most compute-intensive kernel in the paper's
//! per-function breakdown (Figs. 5 and 8).

use cornerstone::{Box3, NeighborList, NeighborSearch};

use crate::av::viscosity_pi;
use crate::kernels::{self, Kernel, RowKernel};
use crate::lanes;
use crate::particles::Particles;

/// Compute accelerations `(ax, ay, az)` and energy rates `du` for owned
/// particles:
///
/// ```text
/// a_i  = -sum_j m_j [ P_i/(Om_i rho_i^2) gradW(h_i)
///                   + P_j/(Om_j rho_j^2) gradW(h_j)
///                   + Pi_ij gradW_avg ]
/// du_i =  P_i/(Om_i rho_i^2) sum_j m_j v_ij . gradW(h_i)
///       + 1/2 sum_j m_j Pi_ij v_ij . gradW_avg
/// ```
///
/// Parallelized by gather: each index accumulates only its own force and
/// energy rate, in cell-list order — bit-identical to the serial loop and
/// across neighbor sources (direct grid walk or precomputed list).
pub fn momentum_energy<N: NeighborSearch + Sync>(
    parts: &mut Particles,
    nb: &N,
    bbox: &Box3,
    kernel: Kernel,
) {
    let p = &*parts;
    let n = p.n_local;
    if let Some(nl) = nb.as_list() {
        let rates: Vec<(f64, f64, f64, f64)> =
            par::par_map(n, |i| momentum_row_blocked(p, nl, i, kernel));
        write_rates(parts, rates);
        return;
    }
    let rates: Vec<(f64, f64, f64, f64)> = par::par_map(n, |i| {
        let (x, y, z) = (&p.x, &p.y, &p.z);
        let hi = p.h[i];
        let rho_i = p.rho[i].max(1e-300);
        let pi_term = p.p[i] / (p.gradh[i] * rho_i * rho_i);
        // Search must cover the larger support of interacting pairs; h is
        // smooth so 1.4x covers neighbor h differences.
        let radius = kernel.support(hi) * 1.4;
        let (mut axi, mut ayi, mut azi, mut dui) = (0.0, 0.0, 0.0, 0.0);

        nb.for_neighbors_of(i, radius, x, y, z, bbox, |j, d2| {
            if j == i || d2 == 0.0 {
                return;
            }
            let r = d2.sqrt();
            let hj = p.h[j];
            // Pair interacts if within either particle's support.
            if r >= kernel.support(hi) && r >= kernel.support(hj) {
                return;
            }
            let (dx, dy, dz) = bbox.delta(x[i], y[i], z[i], x[j], y[j], z[j]);
            let dwi = kernel.dw_dr(r, hi) / r;
            let dwj = kernel.dw_dr(r, hj) / r;
            let dw_avg = 0.5 * (dwi + dwj);

            // First-step halos arrive before their owner computed a density;
            // they carry no pressure yet and must not divide by rho^2 = 0
            // (which underflows to 0/0 = NaN).
            let rho_j = p.rho[j];
            let pj_term = if rho_j > 0.0 {
                p.p[j] / (p.gradh[j] * rho_j * rho_j)
            } else {
                0.0
            };
            let rho_j = rho_j.max(1e-300);

            let dvx = p.vx[i] - p.vx[j];
            let dvy = p.vy[i] - p.vy[j];
            let dvz = p.vz[i] - p.vz[j];
            let vdotr = dvx * dx + dvy * dy + dvz * dz;

            let alpha_ij = 0.5 * (p.alpha[i] + p.alpha[j]);
            let h_ij = 0.5 * (hi + hj);
            let c_ij = 0.5 * (p.c[i] + p.c[j]);
            let rho_ij = 0.5 * (rho_i + rho_j);
            let visc = viscosity_pi(alpha_ij, h_ij, c_ij, rho_ij, vdotr, d2);

            let mj = p.m[j];
            let grad_scale = pi_term * dwi + pj_term * dwj + visc * dw_avg;
            axi -= mj * grad_scale * dx;
            ayi -= mj * grad_scale * dy;
            azi -= mj * grad_scale * dz;
            dui += mj * (pi_term * dwi + 0.5 * visc * dw_avg) * vdotr;
        });

        (axi, ayi, azi, dui)
    });
    write_rates(parts, rates);
}

/// Momentum + energy rates over an explicit row subset of the shared CSR
/// list (interior/boundary split).
///
/// Per-row math is identical to [`momentum_energy`]'s list path; the
/// outputs (`ax/ay/az/du`) are never inputs to any row of this sweep, so
/// disjoint subsets compose bit-identically with the full sweep.
pub fn momentum_energy_rows(
    parts: &mut Particles,
    nl: &NeighborList,
    kernel: Kernel,
    rows: &[usize],
) {
    let p = &*parts;
    let rates: Vec<(f64, f64, f64, f64)> =
        par::par_map(rows.len(), |k| momentum_row_blocked(p, nl, rows[k], kernel));
    for (k, (axi, ayi, azi, dui)) in rates.into_iter().enumerate() {
        let i = rows[k];
        parts.ax[i] = axi;
        parts.ay[i] = ayi;
        parts.az[i] = azi;
        parts.du[i] = dui;
    }
}

fn write_rates(parts: &mut Particles, rates: Vec<(f64, f64, f64, f64)>) {
    for (i, (axi, ayi, azi, dui)) in rates.into_iter().enumerate() {
        parts.ax[i] = axi;
        parts.ay[i] = ayi;
        parts.az[i] = azi;
        parts.du[i] = dui;
    }
}

/// Blocked momentum row: select-then-batch. Distances are batched over the
/// whole CSR row; a branch-free selection pass then compacts the positions
/// of the pairs the scalar path actually processes — its radius filter
/// (`d2 > (1.4 s_i)²`), self/coincident skip (`d2 == 0`, exactly the
/// scalar `j == i || d2 == 0` set), and pairwise support check, evaluated
/// as mask arithmetic with a write-then-advance store so the loop carries
/// no data-dependent branches. The two gradient prefactors `dW/dr / r`
/// (one at `h_i` via the hoisted [`RowKernel`], one at the gathered `h_j`)
/// are then batched over just the compacted survivors — on the h-aware
/// list only ~1/1.4³ of a row interacts, and the varh pass pays two
/// divisions per lane, so evaluating it on survivors rather than the raw
/// row is the win — and the accumulation loop walks the survivor list with
/// no skips left to take.
///
/// Bit-identical to the scalar callback under default features: the
/// survivor set and order equal the scalar path's processed set and order
/// (`keep` is the literal negation of its skips), the batched evaluators
/// are elementwise (same input value → same bits regardless of lane
/// position), and visited pairs see the scalar path's exact expressions
/// (deltas read negated from the stored `r_j - r_i` into the `r_i - r_j`
/// direction `Box3::delta(i, j)` builds — IEEE negation is exact and `d2`
/// is unchanged since squares erase the sign), accumulated in visit order
/// through [`lanes::Acc`]. Per-`i` invariants (`hi`, `rho_i`, `pi_term`,
/// `support(hi)`, velocities, `alpha`, `c`) are hoisted.
fn momentum_row_blocked(
    p: &Particles,
    nl: &NeighborList,
    i: usize,
    kernel: Kernel,
) -> (f64, f64, f64, f64) {
    let hi = p.h[i];
    let rho_i = p.rho[i].max(1e-300);
    let pi_term = p.p[i] / (p.gradh[i] * rho_i * rho_i);
    let si = kernel.support(hi);
    // Search must cover the larger support of interacting pairs; h is
    // smooth so 1.4x covers neighbor h differences.
    let radius = si * 1.4;
    let r2 = radius * radius;
    let rkn = RowKernel::new(kernel, hi);
    let (vxi, vyi, vzi) = (p.vx[i], p.vy[i], p.vz[i]);
    let (alpha_i, c_i) = (p.alpha[i], p.c[i]);
    let (jj, dxs, dys, dzs) = nl.row_deltas(i);
    let m = jj.len();
    lanes::with_scratch(|s| {
        let lanes::RowScratch {
            r,
            w: dwi_b,
            vj: dwj_b,
            aux,
            idx,
            ..
        } = s;
        let [hj_b, d2_b, rc, hjc] = aux;
        lanes::dist2_dist_into(dxs, dys, dzs, d2_b, r);
        hj_b.clear();
        hj_b.resize(m, 0.0);
        for k in 0..m {
            hj_b[k] = p.h[jj[k] as usize];
        }
        // Branch-free survivor selection (see the doc comment): `keep` is
        // the exact negation of the scalar path's skip conditions.
        idx.clear();
        idx.resize(m, 0);
        let mut nsel = 0usize;
        for k in 0..m {
            let d2k = d2_b[k];
            let rk = r[k];
            let keep = (d2k != 0.0) & (d2k <= r2) & ((rk < si) | (rk < kernel.support(hj_b[k])));
            idx[nsel] = k as u32;
            nsel += keep as usize;
        }
        idx.truncate(nsel);
        // Dense gather of the survivors' `r` and `h_j` so the gradient
        // batches touch only interacting pairs. Survivors have `d2 != 0`,
        // so the varh pass never divides by a zero distance here.
        rc.clear();
        rc.resize(nsel, 0.0);
        hjc.clear();
        hjc.resize(nsel, 0.0);
        for (c, &k32) in idx.iter().enumerate() {
            rc[c] = r[k32 as usize];
            hjc[c] = hj_b[k32 as usize];
        }
        rkn.dw_dr_over_r_into(rc, dwi_b);
        kernels::dw_dr_over_r_varh_into(kernel, rc, hjc, dwj_b);

        let mut ax = lanes::Acc::default();
        let mut ay = lanes::Acc::default();
        let mut az = lanes::Acc::default();
        let mut du = lanes::Acc::default();
        for (c, &k32) in idx.iter().enumerate() {
            let k = k32 as usize;
            let d2k = d2_b[k];
            let j = jj[k] as usize;
            let hj = hjc[c];
            let (dx, dy, dz) = (-dxs[k], -dys[k], -dzs[k]);
            let dwi = dwi_b[c];
            let dwj = dwj_b[c];
            let dw_avg = 0.5 * (dwi + dwj);

            // First-step halos arrive before their owner computed a density;
            // they carry no pressure yet and must not divide by rho^2 = 0
            // (which underflows to 0/0 = NaN).
            let rho_j = p.rho[j];
            let pj_term = if rho_j > 0.0 {
                p.p[j] / (p.gradh[j] * rho_j * rho_j)
            } else {
                0.0
            };
            let rho_j = rho_j.max(1e-300);

            let dvx = vxi - p.vx[j];
            let dvy = vyi - p.vy[j];
            let dvz = vzi - p.vz[j];
            let vdotr = dvx * dx + dvy * dy + dvz * dz;

            let alpha_ij = 0.5 * (alpha_i + p.alpha[j]);
            let h_ij = 0.5 * (hi + hj);
            let c_ij = 0.5 * (c_i + p.c[j]);
            let rho_ij = 0.5 * (rho_i + rho_j);
            let visc = viscosity_pi(alpha_ij, h_ij, c_ij, rho_ij, vdotr, d2k);

            let mj = p.m[j];
            let grad_scale = pi_term * dwi + pj_term * dwj + visc * dw_avg;
            ax.sub(c, mj * grad_scale * dx);
            ay.sub(c, mj * grad_scale * dy);
            az.sub(c, mj * grad_scale * dz);
            du.add(c, mj * (pi_term * dwi + 0.5 * visc * dw_avg) * vdotr);
        }
        (ax.value(), ay.value(), az.value(), du.value())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::density_gradh;
    use crate::eos::Eos;
    use cornerstone::CellList;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn uniform_gas(n_side: usize, jitter: f64, seed: u64) -> (Particles, Box3) {
        let bbox = Box3::unit_periodic();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut parts = Particles::new();
        let spacing = 1.0 / n_side as f64;
        let m = 1.0 / (n_side * n_side * n_side) as f64;
        for ix in 0..n_side {
            for iy in 0..n_side {
                for iz in 0..n_side {
                    let mut j = || (rng.random::<f64>() - 0.5) * jitter * spacing;
                    let (jx, jy, jz) = (j(), j(), j());
                    parts.push(
                        (ix as f64 + 0.5) * spacing + jx,
                        (iy as f64 + 0.5) * spacing + jy,
                        (iz as f64 + 0.5) * spacing + jz,
                        0.0,
                        0.0,
                        0.0,
                        m,
                        1.3 * spacing,
                        1.0,
                    );
                }
            }
        }
        (parts, bbox)
    }

    fn prep(parts: &mut Particles, bbox: &Box3, kernel: Kernel) -> CellList {
        let grid = CellList::build(
            &parts.x,
            &parts.y,
            &parts.z,
            bbox,
            kernel.support(parts.h[0]) * 1.4,
        );
        density_gradh(parts, &grid, bbox, kernel);
        Eos::ideal_monatomic().apply(parts);
        grid
    }

    #[test]
    fn uniform_lattice_has_negligible_forces() {
        let kernel = Kernel::CubicSpline;
        let (mut parts, bbox) = uniform_gas(8, 0.0, 1);
        let grid = prep(&mut parts, &bbox, kernel);
        momentum_energy(&mut parts, &grid, &bbox, kernel);
        // Perfect symmetry -> pressure gradients cancel.
        let amax = parts
            .ax
            .iter()
            .chain(&parts.ay)
            .chain(&parts.az)
            .fold(0.0f64, |m, &a| m.max(a.abs()));
        // Pressure scale: P/rho/spacing ~ 0.67/0.125 = 5.3; forces must be
        // orders of magnitude below that.
        assert!(amax < 0.15, "residual force {amax} too large");
    }

    #[test]
    fn momentum_is_conserved_pairwise() {
        // Total momentum rate must vanish for a closed (periodic) system.
        let kernel = Kernel::CubicSpline;
        let (mut parts, bbox) = uniform_gas(7, 0.4, 2);
        // Give particles random velocities so AV participates.
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..parts.len() {
            parts.vx[i] = rng.random::<f64>() - 0.5;
            parts.vy[i] = rng.random::<f64>() - 0.5;
            parts.vz[i] = rng.random::<f64>() - 0.5;
        }
        let grid = prep(&mut parts, &bbox, kernel);
        momentum_energy(&mut parts, &grid, &bbox, kernel);
        let (mut px, mut py, mut pz) = (0.0, 0.0, 0.0);
        let mut scale = 0.0f64;
        for i in 0..parts.n_local {
            px += parts.m[i] * parts.ax[i];
            py += parts.m[i] * parts.ay[i];
            pz += parts.m[i] * parts.az[i];
            scale += parts.m[i] * (parts.ax[i].abs() + parts.ay[i].abs() + parts.az[i].abs());
        }
        let tol = (scale * 1e-10).max(1e-12);
        assert!(px.abs() < tol, "px {px} vs scale {scale}");
        assert!(py.abs() < tol, "py {py}");
        assert!(pz.abs() < tol, "pz {pz}");
    }

    #[test]
    fn compression_heats_the_gas() {
        // A radially-converging velocity field must produce du > 0 overall
        // (pdV work + viscous dissipation).
        let kernel = Kernel::CubicSpline;
        let (mut parts, bbox) = uniform_gas(8, 0.2, 4);
        for i in 0..parts.len() {
            parts.vx[i] = -(parts.x[i] - 0.5);
            parts.vy[i] = -(parts.y[i] - 0.5);
            parts.vz[i] = -(parts.z[i] - 0.5);
            parts.alpha[i] = 0.5;
        }
        let grid = prep(&mut parts, &bbox, kernel);
        momentum_energy(&mut parts, &grid, &bbox, kernel);
        let total_du: f64 = (0..parts.n_local).map(|i| parts.m[i] * parts.du[i]).sum();
        assert!(total_du > 0.0, "compression must heat: {total_du}");
    }

    #[test]
    fn expansion_cools_the_gas() {
        let kernel = Kernel::CubicSpline;
        let (mut parts, bbox) = uniform_gas(8, 0.2, 5);
        for i in 0..parts.len() {
            parts.vx[i] = parts.x[i] - 0.5;
            parts.vy[i] = parts.y[i] - 0.5;
            parts.vz[i] = parts.z[i] - 0.5;
        }
        let grid = prep(&mut parts, &bbox, kernel);
        momentum_energy(&mut parts, &grid, &bbox, kernel);
        // Restrict to the interior: at the periodic wrap the "expansion"
        // field collides with its own image and heats viscously.
        let interior = |i: usize| {
            [parts.x[i], parts.y[i], parts.z[i]]
                .iter()
                .all(|&c| (0.25..0.75).contains(&c))
        };
        let total_du: f64 = (0..parts.n_local)
            .filter(|&i| interior(i))
            .map(|i| parts.m[i] * parts.du[i])
            .sum();
        assert!(total_du < 0.0, "expansion must cool: {total_du}");
    }

    #[test]
    fn overdense_region_pushes_outward() {
        // Two particles close together in a cold background: they repel.
        let kernel = Kernel::CubicSpline;
        let bbox = Box3::cube(0.0, 1.0, false);
        let mut parts = Particles::new();
        parts.push(0.48, 0.5, 0.5, 0.0, 0.0, 0.0, 1.0, 0.05, 1.0);
        parts.push(0.52, 0.5, 0.5, 0.0, 0.0, 0.0, 1.0, 0.05, 1.0);
        let grid = CellList::build(&parts.x, &parts.y, &parts.z, &bbox, 0.15);
        density_gradh(&mut parts, &grid, &bbox, kernel);
        Eos::ideal_monatomic().apply(&mut parts);
        momentum_energy(&mut parts, &grid, &bbox, kernel);
        assert!(
            parts.ax[0] < 0.0,
            "left particle pushed left: {}",
            parts.ax[0]
        );
        assert!(
            parts.ax[1] > 0.0,
            "right particle pushed right: {}",
            parts.ax[1]
        );
        assert!(
            (parts.ax[0] + parts.ax[1]).abs() < 1e-10,
            "equal and opposite"
        );
    }
}
