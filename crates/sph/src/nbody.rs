//! A second mini-app: a collisionless N-body (gravity-only) code.
//!
//! The paper's future-work list (§V) proposes applying the instrumentation
//! and dynamic-frequency method "to other simulation codes that use GPU
//! acceleration". This module is that other code: a Barnes-Hut N-body
//! integrator that reuses the same [`StepObserver`] hooks, so the energy
//! instrumentation and every frequency policy attach to it unchanged.

use cornerstone::{Assignment, Box3, Octree};
use rand::{rngs::StdRng, Rng, SeedableRng};
use ranks::{Op, RankCtx};

use crate::conservation::EnergyBudget;
use crate::funcs::FuncId;
use crate::gravity::BhTree;
use crate::ic::InitialConditions;
use crate::particles::Particles;
use crate::sim::{StepObserver, StepStats};

/// Plummer-sphere initial conditions (standard collisionless test model):
/// density `rho ~ (1 + r²/a²)^(-5/2)`, isotropic velocities drawn from the
/// local distribution function (Aarseth-Hénon-Wielen sampling). Total mass
/// 1, scale radius `a`, G = 1.
pub fn plummer(n: usize, a: f64, seed: u64) -> InitialConditions {
    assert!(n >= 2);
    assert!(a > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parts = Particles::new();
    let m = 1.0 / n as f64;
    // The box exists only for SFC keys; make it generously large and open.
    let bbox = Box3::cube(-20.0 * a, 20.0 * a, false);
    for _ in 0..n {
        // Radius from the inverse cumulative mass profile (truncated so no
        // particle starts outside the key box).
        let r = loop {
            let u: f64 = rng.random_range(1e-8..1.0);
            let r = a / (u.powf(-2.0 / 3.0) - 1.0).sqrt();
            if r < 15.0 * a {
                break r;
            }
        };
        let (x, y, z) = isotropic(&mut rng, r);
        // Velocity magnitude by rejection from q² (1-q²)^(7/2), scaled by the
        // local escape velocity v_e = sqrt(2) (1 + r²/a²)^(-1/4).
        let q = loop {
            let q: f64 = rng.random();
            let g: f64 = rng.random_range(0.0..0.1);
            if g < q * q * (1.0 - q * q).powf(3.5) {
                break q;
            }
        };
        let ve = std::f64::consts::SQRT_2 * (1.0 + (r / a).powi(2)).powf(-0.25);
        let (vx, vy, vz) = isotropic(&mut rng, q * ve);
        // h is unused by the gravity-only code; keep a sane value for the
        // shared particle container.
        parts.push(x, y, z, vx, vy, vz, m, 0.1 * a, 1e-10);
    }
    InitialConditions {
        parts,
        bbox,
        eos: crate::eos::Eos::ideal_monatomic(),
        gravity: true,
        name: "Plummer",
    }
}

fn isotropic(rng: &mut StdRng, magnitude: f64) -> (f64, f64, f64) {
    let z: f64 = rng.random_range(-1.0..1.0);
    let phi: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    let s = (1.0 - z * z).sqrt();
    (
        magnitude * s * phi.cos(),
        magnitude * s * phi.sin(),
        magnitude * z,
    )
}

/// The instrumented functions the N-body loop calls, in order.
pub const NBODY_FUNCS: [FuncId; 5] = [
    FuncId::DomainDecompAndSync,
    FuncId::Gravity,
    FuncId::Timestep,
    FuncId::UpdateQuantities,
    FuncId::EnergyConservation,
];

/// One rank's share of the N-body simulation.
pub struct NBody {
    pub parts: Particles,
    pub bbox: Box3,
    /// Barnes-Hut opening angle.
    pub theta: f64,
    /// Plummer softening length.
    pub eps: f64,
    /// Paper-scale particles per GPU for the workload model.
    pub target_particles_per_rank: f64,
    dt: f64,
    time: f64,
    step_index: u64,
    potential: f64,
}

impl NBody {
    pub fn new(ic: InitialConditions, target_particles_per_rank: f64) -> Self {
        NBody {
            parts: ic.parts,
            bbox: ic.bbox,
            theta: 0.6,
            eps: 0.02,
            target_particles_per_rank,
            dt: 0.0,
            time: 0.0,
            step_index: 0,
            potential: 0.0,
        }
    }

    /// Split a global model among ranks by SFC order.
    pub fn distribute(ic: InitialConditions, target: f64, rank: usize, size: usize) -> Self {
        let mut keys: Vec<(u64, usize)> = (0..ic.parts.len())
            .map(|i| {
                (
                    cornerstone::key_of(ic.parts.x[i], ic.parts.y[i], ic.parts.z[i], &ic.bbox),
                    i,
                )
            })
            .collect();
        keys.sort_unstable();
        let n = keys.len();
        let indices: Vec<usize> = keys[n * rank / size..n * (rank + 1) / size]
            .iter()
            .map(|&(_, i)| i)
            .collect();
        let mut nb = NBody::new(
            InitialConditions {
                parts: ic.parts.extract(&indices),
                bbox: ic.bbox,
                eos: ic.eos,
                gravity: true,
                name: ic.name,
            },
            target,
        );
        nb.step_index = 0;
        nb
    }

    pub fn time(&self) -> f64 {
        self.time
    }

    /// One leapfrog-style step through the instrumented function sequence.
    pub fn step(&mut self, ctx: &mut RankCtx, obs: &mut dyn StepObserver) -> StepStats {
        let target = self.target_particles_per_rank;
        let size = ctx.size();

        // ---- DomainDecompAndSync: SFC sort + migration (no halos — gravity
        // is globally coupled and handled by the gathered tree).
        obs.before(FuncId::DomainDecompAndSync, ctx);
        self.domain_sync(ctx);
        obs.after(
            FuncId::DomainDecompAndSync,
            &FuncId::DomainDecompAndSync.workload(target),
            FuncId::DomainDecompAndSync.host_overhead(size),
            ctx,
        );

        // ---- Gravity --------------------------------------------------
        obs.before(FuncId::Gravity, ctx);
        self.apply_gravity(ctx);
        obs.after(
            FuncId::Gravity,
            &FuncId::Gravity.workload(target),
            FuncId::Gravity.host_overhead(size),
            ctx,
        );

        // ---- Timestep ---------------------------------------------------
        obs.before(FuncId::Timestep, ctx);
        let mut dt_local = f64::INFINITY;
        for i in 0..self.parts.n_local {
            let a2 = self.parts.ax[i].powi(2) + self.parts.ay[i].powi(2) + self.parts.az[i].powi(2);
            if a2 > 0.0 {
                dt_local = dt_local.min(0.2 * (self.eps / a2.sqrt().max(1e-12)).sqrt());
            }
        }
        if !dt_local.is_finite() {
            dt_local = 1e-3;
        }
        if self.dt > 0.0 {
            dt_local = dt_local.min(self.dt * 1.2);
        }
        let dt = ctx.allreduce_f64(dt_local, Op::Min);
        self.dt = dt;
        self.time += dt;
        obs.after(
            FuncId::Timestep,
            &FuncId::Timestep.workload(target),
            FuncId::Timestep.host_overhead(size),
            ctx,
        );

        // ---- UpdateQuantities --------------------------------------------
        obs.before(FuncId::UpdateQuantities, ctx);
        for i in 0..self.parts.n_local {
            self.parts.vx[i] += self.parts.ax[i] * dt;
            self.parts.vy[i] += self.parts.ay[i] * dt;
            self.parts.vz[i] += self.parts.az[i] * dt;
            self.parts.x[i] += self.parts.vx[i] * dt;
            self.parts.y[i] += self.parts.vy[i] * dt;
            self.parts.z[i] += self.parts.vz[i] * dt;
        }
        obs.after(
            FuncId::UpdateQuantities,
            &FuncId::UpdateQuantities.workload(target),
            FuncId::UpdateQuantities.host_overhead(size),
            ctx,
        );

        // ---- EnergyConservation --------------------------------------------
        obs.before(FuncId::EnergyConservation, ctx);
        let local = crate::conservation::local_budget(&self.parts, self.potential);
        let gathered = ctx.allgather_f64s(&local.to_slice());
        let budget = gathered
            .iter()
            .map(|v| EnergyBudget::from_slice(v))
            .fold(EnergyBudget::default(), |acc, b| acc.merged(&b));
        obs.after(
            FuncId::EnergyConservation,
            &FuncId::EnergyConservation.workload(target),
            FuncId::EnergyConservation.host_overhead(size),
            ctx,
        );

        self.step_index += 1;
        StepStats {
            step: self.step_index,
            dt,
            time: self.time,
            budget,
            n_local: self.parts.n_local,
            n_halo: 0,
            migrated: 0,
            repartitioned: false,
            skew: 1.0,
        }
    }

    fn domain_sync(&mut self, ctx: &mut RankCtx) {
        // Sort by key locally.
        let mut keyed: Vec<(u64, usize)> = (0..self.parts.n_local)
            .map(|i| {
                (
                    cornerstone::key_of(
                        self.parts.x[i],
                        self.parts.y[i],
                        self.parts.z[i],
                        &self.bbox,
                    ),
                    i,
                )
            })
            .collect();
        keyed.sort_unstable();
        let perm: Vec<usize> = keyed.iter().map(|&(_, i)| i).collect();
        self.parts.permute_owned(&perm);
        if ctx.size() == 1 {
            return;
        }
        let keys: Vec<u64> = keyed.into_iter().map(|(k, _)| k).collect();
        let key_bytes: Vec<u8> = keys.iter().flat_map(|k| k.to_le_bytes()).collect();
        let gathered = ctx.allgather_bytes(key_bytes);
        let mut global: Vec<u64> = gathered
            .iter()
            .flat_map(|b| {
                b.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("u64")))
            })
            .collect();
        global.sort_unstable();
        let assignment = Assignment::from_octree(&Octree::build(&global, 64), ctx.size());

        let me = ctx.rank();
        let mut outgoing_idx: Vec<Vec<usize>> = vec![Vec::new(); ctx.size()];
        let mut keep = vec![true; self.parts.n_local];
        for (i, &k) in keys.iter().enumerate() {
            let owner = assignment.rank_of_key(k);
            if owner != me {
                outgoing_idx[owner].push(i);
                keep[i] = false;
            }
        }
        let outgoing: Vec<(usize, Vec<u8>)> = (0..ctx.size())
            .filter(|&p| p != me)
            .map(|p| {
                let packed = self.parts.pack_halo(&outgoing_idx[p]);
                (p, packed.iter().flat_map(|f| f.to_le_bytes()).collect())
            })
            .collect();
        let incoming = ctx.exchange(outgoing);
        self.parts.retain_owned(&keep);
        for (_, data) in incoming {
            let vals: Vec<f64> = data
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("f64")))
                .collect();
            self.parts.unpack_halo(&vals);
        }
        self.parts.n_local = self.parts.len();
    }

    fn apply_gravity(&mut self, ctx: &mut RankCtx) {
        let n = self.parts.n_local;
        let mut payload = Vec::with_capacity(n * 4);
        for i in 0..n {
            payload.extend_from_slice(&[
                self.parts.x[i],
                self.parts.y[i],
                self.parts.z[i],
                self.parts.m[i],
            ]);
        }
        let gathered = ctx.allgather_f64s(&payload);
        let mut gx = Vec::new();
        let mut gy = Vec::new();
        let mut gz = Vec::new();
        let mut gm = Vec::new();
        let mut my_offset = 0;
        for (r, buf) in gathered.iter().enumerate() {
            if r == ctx.rank() {
                my_offset = gx.len();
            }
            for c in buf.chunks_exact(4) {
                gx.push(c[0]);
                gy.push(c[1]);
                gz.push(c[2]);
                gm.push(c[3]);
            }
        }
        let tree = BhTree::build(&gx, &gy, &gz, &gm, self.theta, self.eps);
        // Gather-parallel tree walks; the potential fold stays serial in
        // index order so the sum is thread-count invariant.
        let p = &self.parts;
        let walks: Vec<([f64; 3], f64)> = par::par_map(n, |i| {
            tree.accel_at(p.x[i], p.y[i], p.z[i], Some(my_offset + i))
        });
        let mut potential = 0.0;
        for (i, (a, phi)) in walks.into_iter().enumerate() {
            self.parts.ax[i] = a[0];
            self.parts.ay[i] = a[1];
            self.parts.az[i] = a[2];
            potential += 0.5 * self.parts.m[i] * phi;
        }
        self.potential = potential;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NullObserver;
    use ranks::CommCost;

    #[test]
    fn plummer_model_is_bound_and_near_virial() {
        let ic = plummer(600, 1.0, 4);
        assert_eq!(ic.parts.len(), 600);
        assert!((ic.parts.total_mass() - 1.0).abs() < 1e-9);
        // Run one step to get the potential; check 2T/|W| ~ 1 (virial).
        let stats = ranks::run(1, CommCost::default(), |ctx| {
            let ic = plummer(600, 1.0, 4);
            let mut nb = NBody::new(ic, 1e8);
            nb.step(ctx, &mut NullObserver)
        })
        .remove(0);
        assert!(stats.budget.potential < 0.0, "bound system");
        let virial = 2.0 * stats.budget.kinetic / stats.budget.potential.abs();
        assert!(
            (0.6..1.4).contains(&virial),
            "virial ratio {virial} far from equilibrium"
        );
        // Total energy is negative for a bound system.
        assert!(stats.budget.kinetic + stats.budget.potential < 0.0);
    }

    #[test]
    fn energy_and_momentum_conserved_over_steps() {
        let out = ranks::run(1, CommCost::default(), |ctx| {
            let ic = plummer(400, 1.0, 9);
            let mut nb = NBody::new(ic, 1e8);
            let mut stats = Vec::new();
            for _ in 0..10 {
                stats.push(nb.step(ctx, &mut NullObserver));
            }
            stats
        })
        .remove(0);
        let first = out.first().expect("steps ran").budget;
        let last = out.last().expect("steps ran").budget;
        let e0 = first.kinetic + first.potential;
        let e1 = last.kinetic + last.potential;
        let drift = (e1 - e0).abs() / e0.abs();
        assert!(drift < 0.05, "energy drift {drift}");
        assert!(
            last.px.abs() < 0.05 && last.py.abs() < 0.05 && last.pz.abs() < 0.05,
            "momentum drift: ({}, {}, {})",
            last.px,
            last.py,
            last.pz
        );
    }

    #[test]
    fn multirank_matches_single_rank_totals() {
        let single = ranks::run(1, CommCost::default(), |ctx| {
            let mut nb = NBody::new(plummer(512, 1.0, 7), 1e8);
            let mut s = None;
            for _ in 0..3 {
                s = Some(nb.step(ctx, &mut NullObserver));
            }
            s.expect("steps ran")
        })[0];
        let multi = ranks::run(4, CommCost::default(), |ctx| {
            let mut nb = NBody::distribute(plummer(512, 1.0, 7), 1e8, ctx.rank(), ctx.size());
            let mut s = None;
            for _ in 0..3 {
                s = Some(nb.step(ctx, &mut NullObserver));
            }
            s.expect("steps ran")
        })[0];
        let total: f64 = multi.budget.kinetic;
        assert!(
            (total - single.budget.kinetic).abs() / single.budget.kinetic < 1e-6,
            "kinetic: {total} vs {}",
            single.budget.kinetic
        );
        assert!(
            (multi.budget.potential - single.budget.potential).abs()
                / single.budget.potential.abs()
                < 1e-6
        );
        assert_eq!(multi.dt, single.dt);
    }

    #[test]
    fn observer_sees_the_nbody_function_subset() {
        struct Rec(Vec<FuncId>);
        impl StepObserver for Rec {
            fn before(&mut self, f: FuncId, _ctx: &mut RankCtx) {
                self.0.push(f);
            }
            fn after(
                &mut self,
                _f: FuncId,
                _w: &archsim::KernelWorkload,
                _h: archsim::SimDuration,
                _ctx: &mut RankCtx,
            ) {
            }
        }
        let funcs = ranks::run(1, CommCost::default(), |ctx| {
            let mut nb = NBody::new(plummer(100, 1.0, 1), 1e8);
            let mut rec = Rec(Vec::new());
            nb.step(ctx, &mut rec);
            rec.0
        })
        .remove(0);
        assert_eq!(funcs, NBODY_FUNCS.to_vec());
    }
}
