//! Structure-of-arrays particle storage.
//!
//! Matches SPH-EXA's field layout: positions, velocities, smoothing lengths,
//! densities, pressures, internal energy, grad-h terms, IAD tensor
//! components, velocity divergence/curl and artificial-viscosity switches.
//! The SoA layout is what the real code uploads to the GPU wholesale at
//! simulation start (§III-A).

use serde::{Deserialize, Serialize};

/// All per-particle fields. Locally-owned particles occupy `0..n_local`;
/// halo copies received from peers live in `n_local..len()`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Particles {
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub z: Vec<f64>,
    pub vx: Vec<f64>,
    pub vy: Vec<f64>,
    pub vz: Vec<f64>,
    /// Particle mass.
    pub m: Vec<f64>,
    /// Smoothing length.
    pub h: Vec<f64>,
    /// Density.
    pub rho: Vec<f64>,
    /// Pressure.
    pub p: Vec<f64>,
    /// Sound speed.
    pub c: Vec<f64>,
    /// Specific internal energy.
    pub u: Vec<f64>,
    /// du/dt accumulated by MomentumEnergy.
    pub du: Vec<f64>,
    /// Accelerations.
    pub ax: Vec<f64>,
    pub ay: Vec<f64>,
    pub az: Vec<f64>,
    /// Grad-h correction factor (Omega).
    pub gradh: Vec<f64>,
    /// Generalized volume element estimate (the `XMass` field).
    pub xmass: Vec<f64>,
    /// Velocity divergence.
    pub divv: Vec<f64>,
    /// Magnitude of velocity curl.
    pub curlv: Vec<f64>,
    /// Artificial-viscosity switch (alpha).
    pub alpha: Vec<f64>,
    /// IAD tensor components (symmetric 3x3: c11, c12, c13, c22, c23, c33).
    pub c11: Vec<f64>,
    pub c12: Vec<f64>,
    pub c13: Vec<f64>,
    pub c22: Vec<f64>,
    pub c23: Vec<f64>,
    pub c33: Vec<f64>,
    /// Count of locally-owned (non-halo) particles.
    pub n_local: usize,
}

macro_rules! for_each_field {
    ($self:ident, $f:ident) => {
        $f!($self.x);
        $f!($self.y);
        $f!($self.z);
        $f!($self.vx);
        $f!($self.vy);
        $f!($self.vz);
        $f!($self.m);
        $f!($self.h);
        $f!($self.rho);
        $f!($self.p);
        $f!($self.c);
        $f!($self.u);
        $f!($self.du);
        $f!($self.ax);
        $f!($self.ay);
        $f!($self.az);
        $f!($self.gradh);
        $f!($self.xmass);
        $f!($self.divv);
        $f!($self.curlv);
        $f!($self.alpha);
        $f!($self.c11);
        $f!($self.c12);
        $f!($self.c13);
        $f!($self.c22);
        $f!($self.c23);
        $f!($self.c33);
    };
}

impl Particles {
    /// Number of fields a full particle carries (used for paper-scale
    /// communication volume estimates).
    pub const FIELD_COUNT: usize = 27;

    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total stored particles (local + halo).
    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Add one locally-owned particle with kinematic state; derived fields
    /// start at sane defaults. Panics if halos are already attached.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        x: f64,
        y: f64,
        z: f64,
        vx: f64,
        vy: f64,
        vz: f64,
        m: f64,
        h: f64,
        u: f64,
    ) {
        assert_eq!(
            self.len(),
            self.n_local,
            "cannot push owned particles after halos"
        );
        self.x.push(x);
        self.y.push(y);
        self.z.push(z);
        self.vx.push(vx);
        self.vy.push(vy);
        self.vz.push(vz);
        self.m.push(m);
        self.h.push(h);
        self.u.push(u);
        self.rho.push(0.0);
        self.p.push(0.0);
        self.c.push(0.0);
        self.du.push(0.0);
        self.ax.push(0.0);
        self.ay.push(0.0);
        self.az.push(0.0);
        self.gradh.push(1.0);
        self.xmass.push(m);
        self.divv.push(0.0);
        self.curlv.push(0.0);
        self.alpha.push(crate::av::ALPHA_MIN);
        self.c11.push(0.0);
        self.c12.push(0.0);
        self.c13.push(0.0);
        self.c22.push(0.0);
        self.c23.push(0.0);
        self.c33.push(0.0);
        self.n_local += 1;
    }

    /// Drop halo copies, keeping only owned particles.
    pub fn truncate_halos(&mut self) {
        let n = self.n_local;
        macro_rules! trunc {
            ($v:expr) => {
                $v.truncate(n)
            };
        }
        for_each_field!(self, trunc);
    }

    /// Append halo particles received from a peer (kinematic + derived
    /// fields all copied — receivers treat halos as read-only).
    pub fn append_halos(&mut self, other: &Particles, indices: &[usize]) {
        for &i in indices {
            self.x.push(other.x[i]);
            self.y.push(other.y[i]);
            self.z.push(other.z[i]);
            self.vx.push(other.vx[i]);
            self.vy.push(other.vy[i]);
            self.vz.push(other.vz[i]);
            self.m.push(other.m[i]);
            self.h.push(other.h[i]);
            self.rho.push(other.rho[i]);
            self.p.push(other.p[i]);
            self.c.push(other.c[i]);
            self.u.push(other.u[i]);
            self.du.push(0.0);
            self.ax.push(0.0);
            self.ay.push(0.0);
            self.az.push(0.0);
            self.gradh.push(other.gradh[i]);
            self.xmass.push(other.xmass[i]);
            self.divv.push(other.divv[i]);
            self.curlv.push(other.curlv[i]);
            self.alpha.push(other.alpha[i]);
            self.c11.push(other.c11[i]);
            self.c12.push(other.c12[i]);
            self.c13.push(other.c13[i]);
            self.c22.push(other.c22[i]);
            self.c23.push(other.c23[i]);
            self.c33.push(other.c33[i]);
        }
    }

    /// Number of f64 fields in a packed halo/migration record.
    pub const PACK_FIELDS: usize = 13;

    /// Serialize the halo-relevant state of `indices` into a flat f64 buffer
    /// (for the rank runtime's byte channels). Also used for domain
    /// migration, so the viscosity switch `alpha` travels along.
    pub fn pack_halo(&self, indices: &[usize]) -> Vec<f64> {
        let mut out = Vec::with_capacity(indices.len() * Self::PACK_FIELDS);
        for &i in indices {
            out.extend_from_slice(&[
                self.x[i],
                self.y[i],
                self.z[i],
                self.vx[i],
                self.vy[i],
                self.vz[i],
                self.m[i],
                self.h[i],
                self.rho[i],
                self.p[i],
                self.c[i],
                self.u[i],
                self.alpha[i],
            ]);
        }
        out
    }

    /// Append halos from a buffer produced by [`Particles::pack_halo`].
    pub fn unpack_halo(&mut self, data: &[f64]) {
        assert_eq!(
            data.len() % Self::PACK_FIELDS,
            0,
            "halo buffer must be {} f64 per particle",
            Self::PACK_FIELDS
        );
        for chunk in data.chunks_exact(Self::PACK_FIELDS) {
            self.x.push(chunk[0]);
            self.y.push(chunk[1]);
            self.z.push(chunk[2]);
            self.vx.push(chunk[3]);
            self.vy.push(chunk[4]);
            self.vz.push(chunk[5]);
            self.m.push(chunk[6]);
            self.h.push(chunk[7]);
            self.rho.push(chunk[8]);
            self.p.push(chunk[9]);
            self.c.push(chunk[10]);
            self.u.push(chunk[11]);
            self.du.push(0.0);
            self.ax.push(0.0);
            self.ay.push(0.0);
            self.az.push(0.0);
            self.gradh.push(1.0);
            self.xmass.push(chunk[6]);
            self.divv.push(0.0);
            self.curlv.push(0.0);
            self.alpha.push(chunk[12]);
            self.c11.push(0.0);
            self.c12.push(0.0);
            self.c13.push(0.0);
            self.c22.push(0.0);
            self.c23.push(0.0);
            self.c33.push(0.0);
        }
    }

    /// Number of f64 fields in a stage-A (position) halo record: `x, y, z,
    /// h, m` — exactly what grid/CSR construction and the density sweep
    /// read of a neighbor.
    pub const POS_PACK_FIELDS: usize = 5;

    /// Number of f64 fields in a stage-B (deferred) halo record: `vx, vy,
    /// vz, rho, u, alpha`. Together with stage A this covers every
    /// halo-read field that is not recomputed locally (`xmass` from
    /// `m/rho`, `p`/`c` from the EOS); 5 + 6 = 11 f64 per halo, less than
    /// the 13-field combined pack.
    pub const FIELD_PACK_FIELDS: usize = 6;

    /// Stage A of the split halo exchange: pack only what the neighbor
    /// search and the density sweep need (`x, y, z, h, m`).
    pub fn pack_halo_positions(&self, indices: &[usize]) -> Vec<f64> {
        let mut out = Vec::with_capacity(indices.len() * Self::POS_PACK_FIELDS);
        for &i in indices {
            out.extend_from_slice(&[self.x[i], self.y[i], self.z[i], self.h[i], self.m[i]]);
        }
        out
    }

    /// Append stage-A halos. Deferred fields start at the same defaults
    /// [`Particles::unpack_halo`] uses (and are never read before
    /// [`Particles::fill_halo_fields`] overwrites them — the density sweep
    /// only touches `m` of a neighbor).
    pub fn unpack_halo_positions(&mut self, data: &[f64]) {
        assert_eq!(
            data.len() % Self::POS_PACK_FIELDS,
            0,
            "position-halo buffer must be {} f64 per particle",
            Self::POS_PACK_FIELDS
        );
        for chunk in data.chunks_exact(Self::POS_PACK_FIELDS) {
            self.x.push(chunk[0]);
            self.y.push(chunk[1]);
            self.z.push(chunk[2]);
            self.vx.push(0.0);
            self.vy.push(0.0);
            self.vz.push(0.0);
            self.m.push(chunk[4]);
            self.h.push(chunk[3]);
            self.rho.push(0.0);
            self.p.push(0.0);
            self.c.push(0.0);
            self.u.push(0.0);
            self.du.push(0.0);
            self.ax.push(0.0);
            self.ay.push(0.0);
            self.az.push(0.0);
            self.gradh.push(1.0);
            self.xmass.push(chunk[4]);
            self.divv.push(0.0);
            self.curlv.push(0.0);
            self.alpha.push(crate::av::ALPHA_MIN);
            self.c11.push(0.0);
            self.c12.push(0.0);
            self.c13.push(0.0);
            self.c22.push(0.0);
            self.c23.push(0.0);
            self.c33.push(0.0);
        }
    }

    /// Stage B of the split halo exchange: the remaining halo-read fields.
    pub fn pack_halo_fields(&self, indices: &[usize]) -> Vec<f64> {
        let mut out = Vec::with_capacity(indices.len() * Self::FIELD_PACK_FIELDS);
        for &i in indices {
            out.extend_from_slice(&[
                self.vx[i],
                self.vy[i],
                self.vz[i],
                self.rho[i],
                self.u[i],
                self.alpha[i],
            ]);
        }
        out
    }

    /// Complete stage-A halos starting at index `start` with their deferred
    /// fields, recomputing `xmass` with the same bootstrap rule
    /// [`crate::density::xmass`] applies (`m/rho`, or `m` while `rho` is
    /// still zero) so the result is bit-identical to the unsplit exchange.
    pub fn fill_halo_fields(&mut self, start: usize, data: &[f64]) {
        assert_eq!(
            data.len() % Self::FIELD_PACK_FIELDS,
            0,
            "field-halo buffer must be {} f64 per particle",
            Self::FIELD_PACK_FIELDS
        );
        assert!(
            start >= self.n_local && start + data.len() / Self::FIELD_PACK_FIELDS <= self.len(),
            "field fill must target the halo region"
        );
        for (k, chunk) in data.chunks_exact(Self::FIELD_PACK_FIELDS).enumerate() {
            let i = start + k;
            self.vx[i] = chunk[0];
            self.vy[i] = chunk[1];
            self.vz[i] = chunk[2];
            self.rho[i] = chunk[3];
            self.u[i] = chunk[4];
            self.alpha[i] = chunk[5];
            self.xmass[i] = if chunk[3] > 0.0 {
                self.m[i] / chunk[3]
            } else {
                self.m[i]
            };
        }
    }

    /// Keep only owned particles selected by `keep` (used when re-assigning
    /// domains); halo region must already be truncated.
    pub fn retain_owned(&mut self, keep: &[bool]) {
        assert_eq!(self.len(), self.n_local, "truncate halos first");
        assert_eq!(keep.len(), self.n_local);
        macro_rules! filter {
            ($v:expr) => {{
                let mut it = keep.iter();
                $v.retain(|_| *it.next().expect("keep mask length"));
            }};
        }
        for_each_field!(self, filter);
        self.n_local = self.x.len();
    }

    /// Reorder owned particles by `perm` (the SFC sort); halo region must be
    /// empty. `perm[k]` is the old index that moves to position `k`.
    pub fn permute_owned(&mut self, perm: &[usize]) {
        assert_eq!(self.len(), self.n_local, "truncate halos first");
        assert_eq!(perm.len(), self.n_local);
        macro_rules! apply {
            ($v:expr) => {{
                let old = std::mem::take(&mut $v);
                $v = perm.iter().map(|&i| old[i]).collect();
            }};
        }
        for_each_field!(self, apply);
    }

    /// Extract owned particles at `indices` into a new set (domain migration).
    pub fn extract(&self, indices: &[usize]) -> Particles {
        let mut out = Particles::new();
        for &i in indices {
            out.push(
                self.x[i], self.y[i], self.z[i], self.vx[i], self.vy[i], self.vz[i], self.m[i],
                self.h[i], self.u[i],
            );
            let k = out.n_local - 1;
            out.rho[k] = self.rho[i];
            out.p[k] = self.p[i];
            out.c[k] = self.c[i];
            out.gradh[k] = self.gradh[i];
            out.xmass[k] = self.xmass[i];
            out.alpha[k] = self.alpha[i];
        }
        out
    }

    /// Merge another set's owned particles into this one's owned region.
    pub fn absorb(&mut self, other: Particles) {
        assert_eq!(self.len(), self.n_local, "truncate halos first");
        self.x.extend(other.x);
        self.y.extend(other.y);
        self.z.extend(other.z);
        self.vx.extend(other.vx);
        self.vy.extend(other.vy);
        self.vz.extend(other.vz);
        self.m.extend(other.m);
        self.h.extend(other.h);
        self.rho.extend(other.rho);
        self.p.extend(other.p);
        self.c.extend(other.c);
        self.u.extend(other.u);
        self.du.extend(other.du);
        self.ax.extend(other.ax);
        self.ay.extend(other.ay);
        self.az.extend(other.az);
        self.gradh.extend(other.gradh);
        self.xmass.extend(other.xmass);
        self.divv.extend(other.divv);
        self.curlv.extend(other.curlv);
        self.alpha.extend(other.alpha);
        self.c11.extend(other.c11);
        self.c12.extend(other.c12);
        self.c13.extend(other.c13);
        self.c22.extend(other.c22);
        self.c23.extend(other.c23);
        self.c33.extend(other.c33);
        self.n_local = self.x.len();
    }

    /// Total mass of owned particles.
    pub fn total_mass(&self) -> f64 {
        self.m[..self.n_local].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> Particles {
        let mut p = Particles::new();
        p.push(0.1, 0.2, 0.3, 1.0, 0.0, 0.0, 2.0, 0.05, 1.5);
        p.push(0.4, 0.5, 0.6, 0.0, 1.0, 0.0, 3.0, 0.06, 1.6);
        p.push(0.7, 0.8, 0.9, 0.0, 0.0, 1.0, 4.0, 0.07, 1.7);
        p
    }

    #[test]
    fn push_initializes_all_fields_consistently() {
        let p = three();
        assert_eq!(p.len(), 3);
        assert_eq!(p.n_local, 3);
        assert_eq!(p.gradh, vec![1.0; 3]);
        assert_eq!(p.xmass, p.m);
        assert_eq!(p.total_mass(), 9.0);
    }

    #[test]
    fn halo_pack_unpack_roundtrip() {
        let src = three();
        let buf = src.pack_halo(&[0, 2]);
        assert_eq!(buf.len(), 26);
        let mut dst = three();
        dst.unpack_halo(&buf);
        assert_eq!(dst.len(), 5);
        assert_eq!(dst.n_local, 3, "halos are not owned");
        assert_eq!(dst.x[3], 0.1);
        assert_eq!(dst.m[4], 4.0);
        dst.truncate_halos();
        assert_eq!(dst.len(), 3);
    }

    #[test]
    fn split_halo_pack_matches_combined_pack() {
        // Stage A + stage B (+ the local xmass/EOS recomputation the sim
        // performs) must reconstruct exactly what the 13-field pack carries.
        let mut src = three();
        src.rho[0] = 2.0;
        src.rho[2] = 4.0;
        src.alpha[2] = 0.7;

        let mut combined = three();
        combined.unpack_halo(&src.pack_halo(&[0, 2]));

        let mut split = three();
        let start = split.len();
        split.unpack_halo_positions(&src.pack_halo_positions(&[0, 2]));
        assert_eq!(split.len(), 5);
        // Pre-arrival: placeholders, positions/h/m real.
        assert_eq!(split.x[3], 0.1);
        assert_eq!(split.h[4], 0.07);
        assert_eq!(split.rho[3], 0.0);
        split.fill_halo_fields(start, &src.pack_halo_fields(&[0, 2]));

        for i in start..split.len() {
            for (name, a, b) in [
                ("x", split.x[i], combined.x[i]),
                ("y", split.y[i], combined.y[i]),
                ("z", split.z[i], combined.z[i]),
                ("vx", split.vx[i], combined.vx[i]),
                ("vy", split.vy[i], combined.vy[i]),
                ("vz", split.vz[i], combined.vz[i]),
                ("m", split.m[i], combined.m[i]),
                ("h", split.h[i], combined.h[i]),
                ("rho", split.rho[i], combined.rho[i]),
                ("u", split.u[i], combined.u[i]),
                ("alpha", split.alpha[i], combined.alpha[i]),
                ("gradh", split.gradh[i], combined.gradh[i]),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}[{i}]");
            }
            // The split path recomputes xmass from the shipped rho — the
            // value the XMass phase derives for combined-pack halos.
            let expect = if split.rho[i] > 0.0 {
                split.m[i] / split.rho[i]
            } else {
                split.m[i]
            };
            assert_eq!(split.xmass[i].to_bits(), expect.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "halo region")]
    fn fill_halo_fields_rejects_owned_region() {
        let mut p = three();
        let src = three();
        p.unpack_halo_positions(&src.pack_halo_positions(&[0]));
        p.fill_halo_fields(0, &src.pack_halo_fields(&[0]));
    }

    #[test]
    fn append_halos_copies_derived_fields() {
        let mut src = three();
        src.rho[1] = 7.0;
        src.alpha[1] = 0.9;
        let mut dst = three();
        dst.append_halos(&src, &[1]);
        assert_eq!(dst.len(), 4);
        assert_eq!(dst.rho[3], 7.0);
        assert_eq!(dst.alpha[3], 0.9);
    }

    #[test]
    fn permute_reorders_every_field() {
        let mut p = three();
        p.permute_owned(&[2, 0, 1]);
        assert_eq!(p.x, vec![0.7, 0.1, 0.4]);
        assert_eq!(p.m, vec![4.0, 2.0, 3.0]);
        assert_eq!(p.vz, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn retain_and_extract_and_absorb() {
        let mut p = three();
        let moved = p.extract(&[1]);
        p.retain_owned(&[true, false, true]);
        assert_eq!(p.n_local, 2);
        assert_eq!(p.x, vec![0.1, 0.7]);
        assert_eq!(moved.n_local, 1);
        assert_eq!(moved.m, vec![3.0]);
        let mut q = p.clone();
        q.absorb(moved);
        assert_eq!(q.n_local, 3);
        assert_eq!(q.total_mass(), 9.0);
    }

    #[test]
    #[should_panic(expected = "halos")]
    fn push_after_halos_panics() {
        let mut p = three();
        let src = three();
        p.append_halos(&src, &[0]);
        p.push(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.1, 1.0);
    }
}
