//! The time-stepping propagator with instrumentation hooks.
//!
//! `Simulation::step` runs the full SPH-EXA function sequence
//! (`DomainDecompAndSync` → … → `EnergyConservation`), calling a
//! [`StepObserver`] around every function. The observer is where the paper's
//! contribution lives: energy measurement (`PMT` regions) and dynamic GPU
//! frequency selection (`ManDyn`) both attach there, exactly like SPH-EXA's
//! low-overhead profiling hooks (§III-B).

use archsim::{KernelWorkload, SimDuration};
use cornerstone::{
    halo_candidates, load_skew, Aabb, Assignment, Box3, CellList, NeighborList, Octree,
};
use ranks::{Op, RankCtx};
use serde::{Deserialize, Serialize};

use crate::av::av_switches;
use crate::conservation::{local_budget, EnergyBudget};
use crate::density::{density_gradh, neighbor_counts, xmass};
use crate::eos::Eos;
use crate::funcs::{FuncId, WorkloadProfile};
use crate::gravity::BhTree;
use crate::iad::{iad_divv_curlv, iad_divv_curlv_rows};
use crate::ic::InitialConditions;
use crate::kernels::Kernel;
use crate::momentum::momentum_energy;
use crate::particles::Particles;
use crate::timestep::local_timestep;
use crate::update::{update_quantities, update_smoothing_lengths};

/// Hooks wrapped around every instrumented function.
pub trait StepObserver {
    /// Called immediately before the function's physics; ManDyn performs its
    /// `nvmlDeviceSetApplicationsClocks` call here (§III-D).
    fn before(&mut self, func: FuncId, ctx: &mut RankCtx);

    /// Called after the physics with the paper-scale GPU workload descriptor
    /// and the host-side gap preceding the kernels. Implementations advance
    /// device and rank virtual time and record energy.
    fn after(
        &mut self,
        func: FuncId,
        workload: &KernelWorkload,
        host_pre: SimDuration,
        ctx: &mut RankCtx,
    );
}

/// Open a telemetry span for one instrumented function, stamped with the
/// rank's virtual clock at entry. Inert (and allocation-free) outside a
/// recording session.
fn func_span(func: FuncId, step: u64, ctx: &RankCtx) -> telemetry::SpanGuard {
    let mut sp = telemetry::span_start("sph", func.name());
    if sp.is_active() {
        sp.field("step", step);
        sp.sim_start(ctx.now().as_nanos());
    }
    sp
}

/// Stamp the exit clock (after the observer advanced virtual time) and
/// record the span.
fn close_span(mut sp: telemetry::SpanGuard, ctx: &RankCtx) {
    sp.sim_end(ctx.now().as_nanos());
}

/// Observer that does nothing (pure-physics runs and tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl StepObserver for NullObserver {
    fn before(&mut self, _func: FuncId, _ctx: &mut RankCtx) {}
    fn after(&mut self, _f: FuncId, _w: &KernelWorkload, _h: SimDuration, _ctx: &mut RankCtx) {}
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    pub kernel: Kernel,
    /// Particles per rank assumed by the *paper-scale* workload model
    /// (150 M for turbulence, 80 M for Evrard, 450³ on miniHPC).
    pub target_particles_per_rank: f64,
    /// Target neighbor count for the smoothing-length iteration at the
    /// laptop (physics) scale.
    pub target_neighbors: usize,
    /// Octree leaf bucket size.
    pub bucket_size: usize,
    /// Load-skew threshold (max/mean owned-particle count) above which
    /// `DomainDecompAndSync` recomputes the SFC splits from a fresh global
    /// octree. Below it the retained splits are reused: only the one-word
    /// census and the (usually tiny) migration run, skipping the full
    /// global key gather + octree rebuild that used to happen every step.
    #[serde(default = "default_repart_skew_threshold")]
    pub repart_skew_threshold: f64,
    /// Overlap deferred halo-field communication with interior compute:
    /// `DomainDecompAndSync` sends halo kinematics immediately but leaves
    /// the derived-field payload in flight; density and the interior IAD
    /// rows run first, and the deferred payload is drained only before the
    /// boundary rows. Applies to the [`NeighborPath::SharedList`] path;
    /// results are bit-identical with it on or off.
    #[serde(default = "default_halo_overlap")]
    pub halo_overlap: bool,
}

fn default_repart_skew_threshold() -> f64 {
    1.15
}

fn default_halo_overlap() -> bool {
    true
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            kernel: Kernel::CubicSpline,
            target_particles_per_rank: 150e6,
            target_neighbors: 60,
            bucket_size: 64,
            repart_skew_threshold: default_repart_skew_threshold(),
            halo_overlap: default_halo_overlap(),
        }
    }
}

/// How the step's five neighbor sweeps enumerate candidates.
///
/// Both paths are bit-identical (pinned by `tests/parallel_determinism.rs`):
/// the shared list replays the grid's visit sequence through a radius
/// filter. [`NeighborPath::SharedList`] is the default — one traversal per
/// step instead of five; [`NeighborPath::CellGrid`] re-walks the grid per
/// sweep and is kept as the measurable baseline for `bench_neighbors` and
/// the equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NeighborPath {
    /// Build one CSR [`NeighborList`] per step; sweeps replay it.
    #[default]
    SharedList,
    /// Pre-list behavior: every sweep re-walks the 27-cell stencil.
    CellGrid,
}

/// Result of one time-step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    pub step: u64,
    pub dt: f64,
    pub time: f64,
    /// Globally-reduced conserved quantities.
    pub budget: EnergyBudget,
    pub n_local: usize,
    pub n_halo: usize,
    /// Particles that changed owner this step, summed over all ranks.
    #[serde(default)]
    pub migrated: u64,
    /// Whether this step recomputed the SFC splits (vs reusing them).
    #[serde(default)]
    pub repartitioned: bool,
    /// Owned-count load skew (max/mean) seen by this step's census.
    #[serde(default)]
    pub skew: f64,
}

/// One rank's share of the simulation.
pub struct Simulation {
    pub cfg: SimConfig,
    pub parts: Particles,
    pub bbox: Box3,
    pub eos: Eos,
    pub gravity: bool,
    pub name: &'static str,
    /// Scenario kernel mix applied to every reported GPU workload, derived
    /// from the IC name (identity for the Table I workloads).
    pub profile: WorkloadProfile,
    /// Neighbor-sweep strategy; flip to [`NeighborPath::CellGrid`] to time
    /// or pin the pre-list baseline.
    pub neighbor_path: NeighborPath,
    /// Step-shared CSR neighbor candidates, rebuilt in place every step
    /// (`build_adaptive_into` keeps the allocations across steps).
    nlist: NeighborList,
    /// Per-particle search radii (`1.4 · support(h)`) for the h-aware list
    /// build, refilled every step; kept here to reuse the allocation.
    nlist_radii: Vec<f64>,
    nn: Vec<usize>,
    dt: f64,
    time: f64,
    step_index: u64,
    potential: f64,
    /// Largest smoothing length over owned + halo particles, computed once
    /// per step by `DomainDecompAndSync` and reused by `build_grid` (the
    /// full-array fold used to be repeated every grid build).
    h_max_all: f64,
    /// SFC splits retained across steps. `None` until the first step (or
    /// after a rank-count change) forces a full rebuild.
    assignment: Option<Assignment>,
    /// One-shot flag: the next `DomainDecompAndSync` rebuilds the splits
    /// regardless of skew (checkpoint restore without saved splits, tests).
    force_repart: bool,
    /// Deferred stage-B halo receives for the overlap schedule:
    /// `(peer, halo range start, halo count)` in receive order.
    pending_fields: Vec<(usize, usize, usize)>,
    /// Owned rows whose CSR neighbor rows contain no halo index — safe to
    /// sweep before the deferred halo fields arrive.
    interior_rows: Vec<usize>,
    /// Owned rows with at least one halo neighbor; swept after the drain.
    boundary_rows: Vec<usize>,
    last_migrated: u64,
    last_repartitioned: bool,
    last_skew: f64,
}

impl Simulation {
    fn assemble(
        parts: Particles,
        bbox: Box3,
        eos: Eos,
        gravity: bool,
        name: &'static str,
        cfg: SimConfig,
    ) -> Self {
        Simulation {
            cfg,
            parts,
            bbox,
            eos,
            gravity,
            name,
            profile: WorkloadProfile::for_scenario(name),
            neighbor_path: NeighborPath::default(),
            nlist: NeighborList::new(),
            nlist_radii: Vec::new(),
            nn: Vec::new(),
            dt: 0.0,
            time: 0.0,
            step_index: 0,
            potential: 0.0,
            h_max_all: 1e-6,
            assignment: None,
            force_repart: false,
            pending_fields: Vec::new(),
            interior_rows: Vec::new(),
            boundary_rows: Vec::new(),
            last_migrated: 0,
            last_repartitioned: false,
            last_skew: 1.0,
        }
    }

    /// Single-rank simulation over a full initial model.
    pub fn new(ic: InitialConditions, cfg: SimConfig) -> Self {
        Self::assemble(ic.parts, ic.bbox, ic.eos, ic.gravity, ic.name, cfg)
    }

    /// Split a global initial model among ranks by SFC order — the initial
    /// decomposition every rank computes identically.
    pub fn distribute(ic: InitialConditions, cfg: SimConfig, rank: usize, size: usize) -> Self {
        Self::distribute_ref(&ic, cfg, rank, size)
    }

    /// Like [`Simulation::distribute`], but borrows the initial model — the
    /// scaling benches build one 10⁶-particle model and carve every rank's
    /// share from it without cloning the whole IC per rank.
    pub fn distribute_ref(
        ic: &InitialConditions,
        cfg: SimConfig,
        rank: usize,
        size: usize,
    ) -> Self {
        let mut keys: Vec<(u64, usize)> = (0..ic.parts.len())
            .map(|i| {
                (
                    cornerstone::key_of(ic.parts.x[i], ic.parts.y[i], ic.parts.z[i], &ic.bbox),
                    i,
                )
            })
            .collect();
        keys.sort_unstable();
        let n = keys.len();
        let lo = n * rank / size;
        let hi = n * (rank + 1) / size;
        let indices: Vec<usize> = keys[lo..hi].iter().map(|&(_, i)| i).collect();
        let parts = ic.parts.extract(&indices);
        Self::assemble(parts, ic.bbox, ic.eos, ic.gravity, ic.name, cfg)
    }

    pub fn time(&self) -> f64 {
        self.time
    }

    pub fn dt(&self) -> f64 {
        self.dt
    }

    pub fn step_index(&self) -> u64 {
        self.step_index
    }

    /// Force a full SFC repartition at the next `DomainDecompAndSync`,
    /// regardless of the measured load skew.
    pub fn force_repartition(&mut self) {
        self.force_repart = true;
    }

    /// The SFC splits currently in force, if a partition has been computed.
    pub fn assignment_splits(&self) -> Option<&[u64]> {
        self.assignment.as_ref().map(|a| a.splits())
    }

    /// Adopt previously-saved SFC splits (checkpoint restore: resuming with
    /// the interrupted run's partition makes migration and halo traffic —
    /// and therefore the trajectory — replay bit-identically).
    pub fn set_assignment_splits(&mut self, splits: Vec<u64>) {
        self.assignment = Some(Assignment::from_splits(splits));
    }

    /// Serialize this rank's owned carried state as a versioned snapshot
    /// (see [`crate::snapshot`]). Halo copies are not persisted.
    pub fn capture_snapshot(&self) -> Vec<u8> {
        crate::snapshot::encode_particles(&self.parts)
    }

    /// Replace particle state and integrator clocks from a decoded
    /// snapshot. The next step re-derives everything else (neighbor lists,
    /// halos, rates) exactly as an uninterrupted run would.
    pub fn restore_snapshot(&mut self, parts: Particles, step: u64, time_bits: u64, dt_bits: u64) {
        self.parts = parts;
        self.step_index = step;
        self.time = f64::from_bits(time_bits);
        self.dt = f64::from_bits(dt_bits);
        self.nn.clear();
        self.pending_fields.clear();
        self.h_max_all = 1e-6;
    }

    /// Order-sensitive digest of the carried state (pack-blob bits plus the
    /// integrator clocks). Equal digests on every rank of two runs mean the
    /// runs continue bit-identically.
    pub fn state_digest(&self) -> u64 {
        let mut bytes = crate::snapshot::encode_particles(&self.parts);
        bytes.extend_from_slice(&self.step_index.to_le_bytes());
        bytes.extend_from_slice(&self.time.to_bits().to_le_bytes());
        bytes.extend_from_slice(&self.dt.to_bits().to_le_bytes());
        crate::snapshot::fnv1a(&bytes)
    }

    /// The functions this workload actually calls (Evrard includes Gravity).
    pub fn active_funcs(&self) -> Vec<FuncId> {
        FuncId::ALL
            .into_iter()
            .filter(|f| *f != FuncId::Gravity || self.gravity)
            .collect()
    }

    /// Run one full time-step.
    pub fn step(&mut self, ctx: &mut RankCtx, obs: &mut dyn StepObserver) -> StepStats {
        let target = self.cfg.target_particles_per_rank;
        let size = ctx.size();
        let kernel = self.cfg.kernel;

        let mut step_sp = telemetry::span_start("sph", "step");
        if step_sp.is_active() {
            step_sp.field("step", self.step_index);
            step_sp.field("n_local", self.parts.n_local);
            step_sp.sim_start(ctx.now().as_nanos());
        }

        // ---- DomainDecompAndSync -------------------------------------
        let sp = func_span(FuncId::DomainDecompAndSync, self.step_index, ctx);
        obs.before(FuncId::DomainDecompAndSync, ctx);
        self.domain_decomp_and_sync(ctx);
        obs.after(
            FuncId::DomainDecompAndSync,
            &self.profile.workload(FuncId::DomainDecompAndSync, target),
            FuncId::DomainDecompAndSync.host_overhead(size),
            ctx,
        );
        close_span(sp, ctx);

        // ---- FindNeighbors -------------------------------------------
        let sp = func_span(FuncId::FindNeighbors, self.step_index, ctx);
        obs.before(FuncId::FindNeighbors, ctx);
        let grid = self.build_grid();
        match self.neighbor_path {
            NeighborPath::SharedList => {
                // One h-aware traversal: pair (i, j) is stored when within
                // either particle's own search radius `1.4 · support(h)`,
                // so every sweep below replays a row complete for its own
                // query radius without rows inflating to the global
                // maximum radius (the grid's cell size still is that
                // maximum, as the scan stencil requires).
                let t0 = telemetry::active().then(std::time::Instant::now);
                self.nlist_radii.clear();
                self.nlist_radii
                    .extend(self.parts.h.iter().map(|&h| kernel.support(h) * 1.4));
                self.nlist.build_adaptive_into(
                    &grid,
                    &self.parts.x,
                    &self.parts.y,
                    &self.parts.z,
                    self.parts.n_local,
                    &self.nlist_radii,
                );
                if let Some(t0) = t0 {
                    telemetry::gauge_set("neighbors/avg", self.nlist.avg_neighbors());
                    telemetry::gauge_set("neighbors/max", self.nlist.max_neighbors() as f64);
                    telemetry::gauge_set("neighbors/csr_bytes", self.nlist.csr_bytes() as f64);
                    telemetry::gauge_set("neighbors/build_ms", t0.elapsed().as_secs_f64() * 1e3);
                }
                self.nn = neighbor_counts(&self.parts, &self.nlist, &self.bbox, kernel);
                // Overlap schedule: split owned rows by whether their CSR
                // row references any halo index (halos sit past n_local).
                // Interior rows never read deferred halo fields, so they
                // can sweep before the stage-B payload is drained.
                self.interior_rows.clear();
                self.boundary_rows.clear();
                if !self.pending_fields.is_empty() {
                    let n_local = self.parts.n_local;
                    for i in 0..n_local {
                        let (jj, _, _, _) = self.nlist.row_deltas(i);
                        if jj.iter().any(|&j| j as usize >= n_local) {
                            self.boundary_rows.push(i);
                        } else {
                            self.interior_rows.push(i);
                        }
                    }
                }
            }
            NeighborPath::CellGrid => {
                self.nn = neighbor_counts(&self.parts, &grid, &self.bbox, kernel);
            }
        }
        obs.after(
            FuncId::FindNeighbors,
            &self.profile.workload(FuncId::FindNeighbors, target),
            FuncId::FindNeighbors.host_overhead(size),
            ctx,
        );
        close_span(sp, ctx);

        // ---- XMass ----------------------------------------------------
        let sp = func_span(FuncId::XMass, self.step_index, ctx);
        obs.before(FuncId::XMass, ctx);
        xmass(&mut self.parts);
        obs.after(
            FuncId::XMass,
            &self.profile.workload(FuncId::XMass, target),
            FuncId::XMass.host_overhead(size),
            ctx,
        );
        close_span(sp, ctx);

        // ---- NormalizationGradh (density + grad-h) ---------------------
        let sp = func_span(FuncId::NormalizationGradh, self.step_index, ctx);
        obs.before(FuncId::NormalizationGradh, ctx);
        match self.neighbor_path {
            NeighborPath::SharedList => {
                density_gradh(&mut self.parts, &self.nlist, &self.bbox, kernel)
            }
            NeighborPath::CellGrid => density_gradh(&mut self.parts, &grid, &self.bbox, kernel),
        }
        obs.after(
            FuncId::NormalizationGradh,
            &self.profile.workload(FuncId::NormalizationGradh, target),
            FuncId::NormalizationGradh.host_overhead(size),
            ctx,
        );
        close_span(sp, ctx);

        // ---- EquationOfState -------------------------------------------
        let sp = func_span(FuncId::EquationOfState, self.step_index, ctx);
        obs.before(FuncId::EquationOfState, ctx);
        if self.pending_fields.is_empty() {
            self.eos.apply(&mut self.parts);
        } else {
            // Halo rho/u are still in flight; their p/c are computed with
            // the same per-particle math when the deferred payload lands.
            let (eos, n_local) = (self.eos, self.parts.n_local);
            eos.apply_range(&mut self.parts, 0, n_local);
        }
        obs.after(
            FuncId::EquationOfState,
            &self.profile.workload(FuncId::EquationOfState, target),
            FuncId::EquationOfState.host_overhead(size),
            ctx,
        );
        close_span(sp, ctx);

        // ---- IADVelocityDivCurl ----------------------------------------
        let sp = func_span(FuncId::IADVelocityDivCurl, self.step_index, ctx);
        obs.before(FuncId::IADVelocityDivCurl, ctx);
        match self.neighbor_path {
            NeighborPath::SharedList if !self.pending_fields.is_empty() => {
                // Overlap: interior rows read only owned neighbors, so they
                // sweep while the stage-B halo payload is still in flight;
                // the drain fills halo fields, then the boundary rows run.
                // Rows scatter only to themselves and the two subsets are
                // disjoint, so the split is bit-identical to the full sweep.
                iad_divv_curlv_rows(&mut self.parts, &self.nlist, kernel, &self.interior_rows);
                self.drain_halo_fields(ctx);
                iad_divv_curlv_rows(&mut self.parts, &self.nlist, kernel, &self.boundary_rows);
            }
            NeighborPath::SharedList => {
                iad_divv_curlv(&mut self.parts, &self.nlist, &self.bbox, kernel)
            }
            NeighborPath::CellGrid => iad_divv_curlv(&mut self.parts, &grid, &self.bbox, kernel),
        }
        obs.after(
            FuncId::IADVelocityDivCurl,
            &self.profile.workload(FuncId::IADVelocityDivCurl, target),
            FuncId::IADVelocityDivCurl.host_overhead(size),
            ctx,
        );
        close_span(sp, ctx);

        // ---- AVSwitches -------------------------------------------------
        let sp = func_span(FuncId::AVSwitches, self.step_index, ctx);
        obs.before(FuncId::AVSwitches, ctx);
        av_switches(&mut self.parts, self.dt);
        obs.after(
            FuncId::AVSwitches,
            &self.profile.workload(FuncId::AVSwitches, target),
            FuncId::AVSwitches.host_overhead(size),
            ctx,
        );
        close_span(sp, ctx);

        // ---- MomentumEnergy ----------------------------------------------
        let sp = func_span(FuncId::MomentumEnergy, self.step_index, ctx);
        obs.before(FuncId::MomentumEnergy, ctx);
        match self.neighbor_path {
            NeighborPath::SharedList => {
                momentum_energy(&mut self.parts, &self.nlist, &self.bbox, kernel)
            }
            NeighborPath::CellGrid => momentum_energy(&mut self.parts, &grid, &self.bbox, kernel),
        }
        obs.after(
            FuncId::MomentumEnergy,
            &self.profile.workload(FuncId::MomentumEnergy, target),
            FuncId::MomentumEnergy.host_overhead(size),
            ctx,
        );
        close_span(sp, ctx);

        // Numerical-health check (debug builds): no instrumented function may
        // leave non-finite state behind.
        #[cfg(debug_assertions)]
        {
            let nan = |v: &[f64]| v.iter().filter(|x| !x.is_finite()).count();
            let p = &self.parts;
            for (field, count) in [
                ("rho", nan(&p.rho)),
                ("gradh", nan(&p.gradh)),
                ("p", nan(&p.p)),
                ("divv", nan(&p.divv)),
                ("alpha", nan(&p.alpha)),
                ("ax", nan(&p.ax)),
                ("du", nan(&p.du)),
            ] {
                debug_assert_eq!(
                    count,
                    0,
                    "rank {} step {}: {count} non-finite {field} values",
                    ctx.rank(),
                    self.step_index
                );
            }
        }

        // ---- Gravity (Evrard only) ----------------------------------------
        if self.gravity {
            let sp = func_span(FuncId::Gravity, self.step_index, ctx);
            obs.before(FuncId::Gravity, ctx);
            self.apply_gravity(ctx);
            obs.after(
                FuncId::Gravity,
                &self.profile.workload(FuncId::Gravity, target),
                FuncId::Gravity.host_overhead(size),
                ctx,
            );
            close_span(sp, ctx);
        } else {
            self.potential = 0.0;
        }

        // ---- Timestep (global min reduction) -------------------------------
        let sp = func_span(FuncId::Timestep, self.step_index, ctx);
        obs.before(FuncId::Timestep, ctx);
        let dt_local = local_timestep(&self.parts, self.dt);
        let dt = ctx.allreduce_f64(dt_local, Op::Min);
        self.dt = dt;
        self.time += dt;
        obs.after(
            FuncId::Timestep,
            &self.profile.workload(FuncId::Timestep, target),
            FuncId::Timestep.host_overhead(size),
            ctx,
        );
        close_span(sp, ctx);

        // ---- UpdateQuantities ----------------------------------------------
        let sp = func_span(FuncId::UpdateQuantities, self.step_index, ctx);
        obs.before(FuncId::UpdateQuantities, ctx);
        update_quantities(&mut self.parts, dt, &self.bbox);
        update_smoothing_lengths(&mut self.parts, &self.nn, self.cfg.target_neighbors);
        obs.after(
            FuncId::UpdateQuantities,
            &self.profile.workload(FuncId::UpdateQuantities, target),
            FuncId::UpdateQuantities.host_overhead(size),
            ctx,
        );
        close_span(sp, ctx);

        // ---- EnergyConservation ----------------------------------------------
        let sp = func_span(FuncId::EnergyConservation, self.step_index, ctx);
        obs.before(FuncId::EnergyConservation, ctx);
        let local = local_budget(&self.parts, self.potential);
        let gathered = ctx.allgather_f64s(&local.to_slice());
        let budget = gathered
            .iter()
            .map(|v| EnergyBudget::from_slice(v))
            .fold(EnergyBudget::default(), |acc, b| acc.merged(&b));
        obs.after(
            FuncId::EnergyConservation,
            &self.profile.workload(FuncId::EnergyConservation, target),
            FuncId::EnergyConservation.host_overhead(size),
            ctx,
        );
        close_span(sp, ctx);

        step_sp.sim_end(ctx.now().as_nanos());
        drop(step_sp);

        self.step_index += 1;
        StepStats {
            step: self.step_index,
            dt,
            time: self.time,
            budget,
            n_local: self.parts.n_local,
            n_halo: self.parts.len() - self.parts.n_local,
            migrated: self.last_migrated,
            repartitioned: self.last_repartitioned,
            skew: self.last_skew,
        }
    }

    /// Interaction radius covering every particle's kernel support (with the
    /// same 1.4 headroom the force loop uses for pair asymmetry).
    fn halo_radius(&self, global_h_max: f64) -> f64 {
        self.cfg.kernel.support(global_h_max) * 1.4
    }

    fn build_grid(&self) -> CellList {
        // `h_max_all` is maintained by `domain_decomp_and_sync`, which runs
        // at the start of every step before the grid is (re)built.
        CellList::build(
            &self.parts.x,
            &self.parts.y,
            &self.parts.z,
            &self.bbox,
            self.cfg.kernel.support(self.h_max_all) * 1.4,
        )
    }

    /// Sort owned particles by SFC key; returns the sorted keys.
    fn sort_owned(&mut self) -> Vec<u64> {
        let mut keyed: Vec<(u64, usize)> = (0..self.parts.n_local)
            .map(|i| {
                (
                    cornerstone::key_of(
                        self.parts.x[i],
                        self.parts.y[i],
                        self.parts.z[i],
                        &self.bbox,
                    ),
                    i,
                )
            })
            .collect();
        keyed.sort_unstable();
        let perm: Vec<usize> = keyed.iter().map(|&(_, i)| i).collect();
        self.parts.permute_owned(&perm);
        keyed.into_iter().map(|(k, _)| k).collect()
    }

    /// Whether this step defers the halo derived-field payload (stage B)
    /// past the interior sweeps. Requires the shared CSR list — the row
    /// classification comes from it.
    fn overlap_active(&self, size: usize) -> bool {
        self.cfg.halo_overlap && size > 1 && self.neighbor_path == NeighborPath::SharedList
    }

    /// Drain the deferred stage-B halo payload: receive each peer's derived
    /// fields in the stage-A peer order, scatter them into the halo tail,
    /// then derive halo pressure/sound speed — the same per-particle EOS
    /// math the classic path applies to packed halo state. Runs exactly
    /// once per step when the overlap schedule deferred anything, so the
    /// per-pair FIFO stays aligned with the next step's migration exchange.
    fn drain_halo_fields(&mut self, ctx: &mut RankCtx) {
        let pending = std::mem::take(&mut self.pending_fields);
        for (peer, start, _count) in pending {
            let data = bytes_to_f64s(&ctx.recv(peer));
            self.parts.fill_halo_fields(start, &data);
        }
        let eos = self.eos;
        let (n_local, len) = (self.parts.n_local, self.parts.len());
        eos.apply_range(&mut self.parts, n_local, len);
    }

    /// The full `DomainDecompAndSync` phase: SFC sort, incremental
    /// repartitioning, particle migration, halo discovery and exchange.
    fn domain_decomp_and_sync(&mut self, ctx: &mut RankCtx) {
        self.parts.truncate_halos();
        let keys = self.sort_owned();

        // ---- Incremental repartitioning ------------------------------
        // Cheap census every step: one f64 per rank. Every rank computes
        // the same skew from the same census, so the rebuild decision is
        // collective without an extra agreement round. The O(N_global) key
        // gather + octree rebuild below only runs when the partition has
        // actually degraded (or on first use / forced refresh).
        let counts: Vec<usize> = ctx
            .allgather_f64s(&[self.parts.n_local as f64])
            .iter()
            .map(|v| v[0] as usize)
            .collect();
        let skew = load_skew(&counts);
        let stale = match &self.assignment {
            None => true,
            Some(a) => a.parts() != ctx.size(),
        };
        let repartition = stale || self.force_repart || skew > self.cfg.repart_skew_threshold;
        self.force_repart = false;
        self.last_skew = skew;
        self.last_repartitioned = repartition;
        if repartition {
            // Global octree from everyone's keys (laptop scale: the global
            // key set fits comfortably; production codes merge distributed
            // trees).
            let key_bytes: Vec<u8> = keys.iter().flat_map(|k| k.to_le_bytes()).collect();
            let gathered = ctx.allgather_bytes(key_bytes);
            let mut global_keys: Vec<u64> = gathered
                .iter()
                .flat_map(|b| {
                    b.chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte keys")))
                })
                .collect();
            global_keys.sort_unstable();
            let tree = Octree::build(&global_keys, self.cfg.bucket_size);
            self.assignment = Some(Assignment::from_octree(&tree, ctx.size()));
        }
        let assignment = self.assignment.clone().expect("splits exist after census");

        // Migrate misplaced particles to their owners. This runs every step
        // against the retained splits — ownership is always correct; only
        // the *balance* of the partition ages between rebuilds.
        let mut migrated_local = 0u64;
        if ctx.size() > 1 {
            let me = ctx.rank();
            let mut outgoing_idx: Vec<Vec<usize>> = vec![Vec::new(); ctx.size()];
            for (i, &k) in keys.iter().enumerate() {
                let owner = assignment.rank_of_key(k);
                if owner != me {
                    outgoing_idx[owner].push(i);
                }
            }
            let mut keep = vec![true; self.parts.n_local];
            for peer_list in &outgoing_idx {
                migrated_local += peer_list.len() as u64;
                for &i in peer_list {
                    keep[i] = false;
                }
            }
            let outgoing: Vec<(usize, Vec<u8>)> = (0..ctx.size())
                .filter(|&p| p != me)
                .map(|p| (p, f64s_to_bytes(&self.parts.pack_halo(&outgoing_idx[p]))))
                .collect();
            let incoming = ctx.exchange(outgoing);
            self.parts.retain_owned(&keep);
            // Received particles become owned: unpack as halos, then claim.
            for (_, data) in incoming {
                self.parts.unpack_halo(&bytes_to_f64s(&data));
            }
            self.parts.n_local = self.parts.len();
            self.sort_owned();
            self.last_migrated = ctx.allreduce_u64(migrated_local, Op::Sum);
        } else {
            self.last_migrated = 0;
        }

        // Halo discovery: everyone needs each peer's bounding box and the
        // global interaction radius.
        let h_local = self.parts.h[..self.parts.n_local]
            .iter()
            .cloned()
            .fold(1e-6, f64::max);
        let h_max = ctx.allreduce_f64(h_local, Op::Max);
        let radius = self.halo_radius(h_max);
        let my_box = Aabb::of_points(
            &self.parts.x[..self.parts.n_local],
            &self.parts.y[..self.parts.n_local],
            &self.parts.z[..self.parts.n_local],
        );
        let boxes = ctx.allgather_f64s(&[
            my_box.xmin,
            my_box.xmax,
            my_box.ymin,
            my_box.ymax,
            my_box.zmin,
            my_box.zmax,
        ]);

        self.pending_fields.clear();
        if ctx.size() > 1 {
            let me = ctx.rank();
            let peers: Vec<usize> = (0..ctx.size()).filter(|&p| p != me).collect();
            let cands: Vec<Vec<usize>> = peers
                .iter()
                .map(|&p| {
                    let b = &boxes[p];
                    let peer_box = Aabb {
                        xmin: b[0],
                        xmax: b[1],
                        ymin: b[2],
                        ymax: b[3],
                        zmin: b[4],
                        zmax: b[5],
                    };
                    halo_candidates(
                        &self.parts.x[..self.parts.n_local],
                        &self.parts.y[..self.parts.n_local],
                        &self.parts.z[..self.parts.n_local],
                        &peer_box,
                        radius,
                        &self.bbox,
                    )
                })
                .collect();
            if self.overlap_active(ctx.size()) {
                // Two-stage exchange: stage A (positions, h, m — everything
                // the grid/CSR build and density need) is received now, in
                // the same ascending-peer order the classic exchange uses,
                // so halo indices — and every CSR row — are identical.
                // Stage B (velocities, rho, u, alpha — first read by the
                // boundary IAD rows) stays in flight until the drain.
                for (k, &p) in peers.iter().enumerate() {
                    ctx.send(p, f64s_to_bytes(&self.parts.pack_halo_positions(&cands[k])));
                    ctx.send(p, f64s_to_bytes(&self.parts.pack_halo_fields(&cands[k])));
                }
                for &p in &peers {
                    let data = bytes_to_f64s(&ctx.recv(p));
                    let start = self.parts.len();
                    self.parts.unpack_halo_positions(&data);
                    self.pending_fields
                        .push((p, start, self.parts.len() - start));
                }
            } else {
                let outgoing: Vec<(usize, Vec<u8>)> = peers
                    .iter()
                    .enumerate()
                    .map(|(k, &p)| (p, f64s_to_bytes(&self.parts.pack_halo(&cands[k]))))
                    .collect();
                let incoming = ctx.exchange(outgoing);
                for (_, data) in incoming {
                    self.parts.unpack_halo(&bytes_to_f64s(&data));
                }
            }
        }

        // Cache the owned+halo h maximum for this step's grid builds:
        // extending the owned fold over the freshly-unpacked halo tail gives
        // exactly the value the old per-build full-array fold produced.
        self.h_max_all = self.parts.h[self.parts.n_local..]
            .iter()
            .cloned()
            .fold(h_local, f64::max);
    }

    /// Global Barnes-Hut gravity: gather all point masses, add accelerations,
    /// and record this rank's share of the potential energy.
    fn apply_gravity(&mut self, ctx: &mut RankCtx) {
        let n_local = self.parts.n_local;
        let mut payload = Vec::with_capacity(n_local * 4);
        for i in 0..n_local {
            payload.extend_from_slice(&[
                self.parts.x[i],
                self.parts.y[i],
                self.parts.z[i],
                self.parts.m[i],
            ]);
        }
        let gathered = ctx.allgather_f64s(&payload);
        let mut gx = Vec::new();
        let mut gy = Vec::new();
        let mut gz = Vec::new();
        let mut gm = Vec::new();
        let mut my_offset = 0usize;
        for (r, buf) in gathered.iter().enumerate() {
            if r == ctx.rank() {
                my_offset = gx.len();
            }
            for c in buf.chunks_exact(4) {
                gx.push(c[0]);
                gy.push(c[1]);
                gz.push(c[2]);
                gm.push(c[3]);
            }
        }
        let h_mean = self.parts.h[..n_local].iter().sum::<f64>() / n_local.max(1) as f64;
        let tree = BhTree::build(&gx, &gy, &gz, &gm, 0.6, 0.2 * h_mean);
        // Gather-parallel tree walks; the potential fold stays serial in
        // index order so the sum is thread-count invariant.
        let p = &self.parts;
        let walks: Vec<([f64; 3], f64)> = par::par_map(n_local, |i| {
            tree.accel_at(p.x[i], p.y[i], p.z[i], Some(my_offset + i))
        });
        let mut potential = 0.0;
        for (i, (a, phi)) in walks.into_iter().enumerate() {
            self.parts.ax[i] += a[0];
            self.parts.ay[i] += a[1];
            self.parts.az[i] += a[2];
            potential += 0.5 * self.parts.m[i] * phi;
        }
        self.potential = potential;
    }
}

fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|f| f.to_le_bytes()).collect()
}

fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunks")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ic::{evrard, subsonic_turbulence};
    use ranks::CommCost;

    fn small_cfg(target_neighbors: usize) -> SimConfig {
        SimConfig {
            kernel: Kernel::CubicSpline,
            target_particles_per_rank: 1e6,
            target_neighbors,
            bucket_size: 32,
            ..SimConfig::default()
        }
    }

    #[test]
    fn turbulence_single_rank_runs_and_conserves_momentum() {
        let stats = ranks::run(1, CommCost::default(), |ctx| {
            let ic = subsonic_turbulence(8, 0.3, 11);
            let mut sim = Simulation::new(ic, small_cfg(40));
            let mut obs = NullObserver;
            let mut out = Vec::new();
            for _ in 0..3 {
                out.push(sim.step(ctx, &mut obs));
            }
            out
        });
        let steps = &stats[0];
        assert_eq!(steps.len(), 3);
        for s in steps {
            assert!(s.dt > 0.0 && s.dt.is_finite());
            assert_eq!(s.n_local, 512);
            // Solenoidal field on a periodic box: momentum stays ~0 relative
            // to the velocity scale (n * mach * m ~ 0.3 * 1 = 0.3 scale).
            assert!(s.budget.px.abs() < 0.05, "px {}", s.budget.px);
            assert!(s.budget.kinetic > 0.0);
        }
        // Time advances monotonically.
        assert!(steps[2].time > steps[1].time && steps[1].time > steps[0].time);
    }

    #[test]
    fn evrard_collapse_deepens_potential_and_conserves_energy() {
        let stats = ranks::run(1, CommCost::default(), |ctx| {
            let ic = evrard(10);
            let mut sim = Simulation::new(ic, small_cfg(40));
            let mut obs = NullObserver;
            let mut out = Vec::new();
            for _ in 0..5 {
                out.push(sim.step(ctx, &mut obs));
            }
            out
        });
        let steps = &stats[0];
        let first = steps[0].budget;
        let last = steps[4].budget;
        assert!(first.potential < 0.0, "bound system");
        assert!(
            last.potential <= first.potential + 1e-6,
            "collapse must deepen the well: {} -> {}",
            first.potential,
            last.potential
        );
        assert!(last.kinetic > first.kinetic, "infall gains kinetic energy");
        // Total energy drift stays small over a few steps.
        let drift = (last.total() - first.total()).abs() / first.total().abs();
        assert!(drift < 0.05, "energy drift {drift}");
    }

    #[test]
    fn turbulence_decays_under_viscosity() {
        // Undriven subsonic turbulence decays: kinetic energy must fall over
        // many steps (artificial viscosity + pressure work), while total
        // momentum stays conserved and density stays near the mean.
        let out = ranks::run(1, CommCost::default(), |ctx| {
            let ic = subsonic_turbulence(8, 0.5, 21);
            let mut sim = Simulation::new(ic, small_cfg(40));
            let mut kinetic = Vec::new();
            let mut last = None;
            for _ in 0..15 {
                let s = sim.step(ctx, &mut NullObserver);
                kinetic.push(s.budget.kinetic);
                last = Some(s);
            }
            let rho_rms = {
                let p = &sim.parts;
                (0..p.n_local)
                    .map(|i| (p.rho[i] - 1.0).powi(2))
                    .sum::<f64>()
                    / p.n_local as f64
            }
            .sqrt();
            (kinetic, last.expect("steps ran"), rho_rms)
        })
        .remove(0);
        let (kinetic, last, rho_rms) = out;
        let first = kinetic.first().expect("steps");
        let final_ke = kinetic.last().expect("steps");
        assert!(
            *final_ke < first * 0.98,
            "kinetic energy must decay: {first} -> {final_ke}"
        );
        assert!(
            last.budget.px.abs() < 0.05,
            "momentum conserved: {}",
            last.budget.px
        );
        assert!(
            rho_rms < 0.2,
            "subsonic: density stays near the mean (rms {rho_rms})"
        );
    }

    #[test]
    fn pressure_jump_drives_flow_toward_low_pressure() {
        // A 3D shock-tube analogue: hot left half, cold right half of a
        // periodic box. The interface at x = 0.5 must push gas rightward
        // (and the wrapped interface at x = 0/1 leftward).
        let out = ranks::run(1, CommCost::default(), |ctx| {
            let mut ic = crate::ic::subsonic_turbulence(10, 0.0, 1);
            ic.eos = crate::eos::Eos::ideal_monatomic();
            for i in 0..ic.parts.len() {
                ic.parts.vx[i] = 0.0;
                ic.parts.vy[i] = 0.0;
                ic.parts.vz[i] = 0.0;
                ic.parts.u[i] = if ic.parts.x[i] < 0.5 { 2.5 } else { 0.25 };
            }
            let mut sim = Simulation::new(ic, small_cfg(40));
            for _ in 0..4 {
                sim.step(ctx, &mut NullObserver);
            }
            let p = &sim.parts;
            let band_mean_vx = |lo: f64, hi: f64| {
                let sel: Vec<usize> = (0..p.n_local)
                    .filter(|&i| p.x[i] >= lo && p.x[i] < hi)
                    .collect();
                sel.iter().map(|&i| p.vx[i]).sum::<f64>() / sel.len().max(1) as f64
            };
            (band_mean_vx(0.5, 0.62), band_mean_vx(0.0, 0.1))
        })
        .remove(0);
        let (right_of_interface, near_wrap) = out;
        assert!(
            right_of_interface > 0.01,
            "gas right of the hot/cold interface must accelerate rightward: {right_of_interface}"
        );
        assert!(
            near_wrap < -0.01,
            "gas right of the wrapped interface (x~0) must accelerate leftward: {near_wrap}"
        );
    }

    #[test]
    fn sedov_blast_expands_outward() {
        let out = ranks::run(1, CommCost::default(), |ctx| {
            let ic = crate::ic::sedov(10, 1.0);
            let mut sim = Simulation::new(ic, small_cfg(40));
            let mut radii = Vec::new();
            for _ in 0..6 {
                sim.step(ctx, &mut NullObserver);
                // Energy-weighted mean radius of hot material tracks the
                // shock front.
                let p = &sim.parts;
                let mut num = 0.0;
                let mut den = 0.0;
                for i in 0..p.n_local {
                    let r =
                        ((p.x[i] - 0.5).powi(2) + (p.y[i] - 0.5).powi(2) + (p.z[i] - 0.5).powi(2))
                            .sqrt();
                    let e = p.m[i] * p.u[i];
                    num += e * r;
                    den += e;
                }
                radii.push(num / den);
            }
            // Outward bulk motion: mass-weighted radial velocity positive.
            let p = &sim.parts;
            let vr_sum: f64 = (0..p.n_local)
                .map(|i| {
                    let (dx, dy, dz) = (p.x[i] - 0.5, p.y[i] - 0.5, p.z[i] - 0.5);
                    let r = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-12);
                    p.m[i] * (p.vx[i] * dx + p.vy[i] * dy + p.vz[i] * dz) / r
                })
                .sum();
            (radii, vr_sum)
        })
        .remove(0);
        let (radii, vr_sum) = out;
        assert!(
            radii.last().expect("steps ran") > radii.first().expect("steps ran"),
            "hot region must expand: {radii:?}"
        );
        assert!(vr_sum > 0.0, "net outward motion expected, got {vr_sum}");
    }

    #[test]
    fn multirank_turbulence_matches_particle_count_and_syncs_budget() {
        let out = ranks::run(4, CommCost::default(), |ctx| {
            let ic = subsonic_turbulence(8, 0.3, 11);
            let mut sim = Simulation::distribute(ic, small_cfg(40), ctx.rank(), ctx.size());
            let mut obs = NullObserver;
            let mut stats = None;
            for _ in 0..2 {
                stats = Some(sim.step(ctx, &mut obs));
            }
            stats.unwrap()
        });
        // Global particle count preserved across migration.
        let total: usize = out.iter().map(|s| s.n_local).sum();
        assert_eq!(total, 512);
        // Every rank sees the same reduced budget and dt.
        for s in &out[1..] {
            assert_eq!(s.dt, out[0].dt);
            assert!((s.budget.kinetic - out[0].budget.kinetic).abs() < 1e-9);
            assert!((s.budget.internal - out[0].budget.internal).abs() < 1e-9);
        }
        // Ranks at the domain interior must have halos.
        assert!(
            out.iter().any(|s| s.n_halo > 0),
            "halo exchange produced nothing"
        );
    }

    #[test]
    fn multirank_run_approximates_single_rank_physics() {
        let single = ranks::run(1, CommCost::default(), |ctx| {
            let ic = subsonic_turbulence(8, 0.3, 5);
            let mut sim = Simulation::new(ic, small_cfg(40));
            let mut s = None;
            for _ in 0..3 {
                s = Some(sim.step(ctx, &mut NullObserver));
            }
            s.unwrap()
        })[0];
        let multi = ranks::run(4, CommCost::default(), |ctx| {
            let ic = subsonic_turbulence(8, 0.3, 5);
            let mut sim = Simulation::distribute(ic, small_cfg(40), ctx.rank(), ctx.size());
            let mut s = None;
            for _ in 0..3 {
                s = Some(sim.step(ctx, &mut NullObserver));
            }
            s.unwrap()
        })[0];
        // Same global physics within decomposition tolerance (first-step
        // halos bootstrap their density, so small-n runs diverge slightly).
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
        assert!(
            rel(multi.budget.kinetic, single.budget.kinetic) < 0.05,
            "kinetic: multi {} vs single {}",
            multi.budget.kinetic,
            single.budget.kinetic
        );
        assert!(rel(multi.budget.internal, single.budget.internal) < 0.05);
        assert!(
            rel(multi.dt, single.dt) < 0.05,
            "dt: {} vs {}",
            multi.dt,
            single.dt
        );
    }

    /// Full per-rank state fingerprint: digest of every carried field plus
    /// the integrator clocks.
    fn run_digest(ranks: usize, steps: usize, cfg: SimConfig) -> Vec<u64> {
        ranks::run(ranks, CommCost::default(), move |ctx| {
            let ic = subsonic_turbulence(8, 0.3, 11);
            let mut sim = if ctx.size() == 1 {
                Simulation::new(ic, cfg)
            } else {
                Simulation::distribute(ic, cfg, ctx.rank(), ctx.size())
            };
            for _ in 0..steps {
                sim.step(ctx, &mut NullObserver);
            }
            sim.state_digest()
        })
    }

    #[test]
    fn halo_overlap_is_bitwise_identical_to_classic_exchange() {
        let classic = run_digest(
            4,
            3,
            SimConfig {
                halo_overlap: false,
                ..small_cfg(40)
            },
        );
        let overlapped = run_digest(
            4,
            3,
            SimConfig {
                halo_overlap: true,
                ..small_cfg(40)
            },
        );
        assert_eq!(
            classic, overlapped,
            "deferred stage-B halo exchange must not change any bit"
        );
    }

    #[test]
    fn snapshot_restore_continues_bit_identically_single_rank() {
        let full = run_digest(1, 6, small_cfg(40));
        let resumed = ranks::run(1, CommCost::default(), |ctx| {
            let ic = subsonic_turbulence(8, 0.3, 11);
            let mut first = Simulation::new(ic, small_cfg(40));
            for _ in 0..3 {
                first.step(ctx, &mut NullObserver);
            }
            let blob = first.capture_snapshot();
            let (step, time, dt) = (first.step_index(), first.time(), first.dt());
            drop(first);

            // A "fresh process": new Simulation from the same IC, state
            // replaced wholesale from the snapshot.
            let ic = subsonic_turbulence(8, 0.3, 11);
            let mut sim = Simulation::new(ic, small_cfg(40));
            let parts = crate::snapshot::decode_particles(&blob).expect("own snapshot");
            sim.restore_snapshot(parts, step, time.to_bits(), dt.to_bits());
            for _ in 0..3 {
                sim.step(ctx, &mut NullObserver);
            }
            sim.state_digest()
        });
        assert_eq!(full, resumed, "kill/restore must be invisible to physics");
    }

    #[test]
    fn snapshot_restore_continues_bit_identically_multirank() {
        let full = run_digest(4, 6, small_cfg(40));
        let resumed = ranks::run(4, CommCost::default(), |ctx| {
            let ic = subsonic_turbulence(8, 0.3, 11);
            let mut first = Simulation::distribute(ic, small_cfg(40), ctx.rank(), ctx.size());
            for _ in 0..3 {
                first.step(ctx, &mut NullObserver);
            }
            let blob = first.capture_snapshot();
            let splits = first
                .assignment_splits()
                .expect("partition exists after stepping")
                .to_vec();
            let (step, time, dt) = (first.step_index(), first.time(), first.dt());
            drop(first);

            let ic = subsonic_turbulence(8, 0.3, 11);
            let mut sim = Simulation::distribute(ic, small_cfg(40), ctx.rank(), ctx.size());
            let parts = crate::snapshot::decode_particles(&blob).expect("own snapshot");
            sim.restore_snapshot(parts, step, time.to_bits(), dt.to_bits());
            sim.set_assignment_splits(splits);
            for _ in 0..3 {
                sim.step(ctx, &mut NullObserver);
            }
            sim.state_digest()
        });
        assert_eq!(
            full, resumed,
            "multirank kill/restore must replay migration and halos exactly"
        );
    }

    #[test]
    fn repartitioning_is_incremental_under_balanced_load() {
        let stats = ranks::run(4, CommCost::default(), |ctx| {
            let ic = subsonic_turbulence(8, 0.3, 11);
            let mut sim = Simulation::distribute(ic, small_cfg(40), ctx.rank(), ctx.size());
            let mut out = Vec::new();
            for _ in 0..4 {
                out.push(sim.step(ctx, &mut NullObserver));
            }
            // A forced refresh must rebuild on the next step.
            sim.force_repartition();
            out.push(sim.step(ctx, &mut NullObserver));
            out
        })
        .remove(0);
        assert!(
            stats[0].repartitioned,
            "first step must build the partition"
        );
        for s in &stats[1..4] {
            assert!(
                !s.repartitioned,
                "balanced subsonic box must reuse splits (skew {})",
                s.skew
            );
            assert!(
                s.skew >= 1.0 && s.skew <= 1.15,
                "skew {} out of band",
                s.skew
            );
        }
        assert!(stats[4].repartitioned, "force_repartition must rebuild");
        // Migration still runs every step and the moved fraction stays far
        // below a full redistribution.
        for s in &stats {
            assert!(
                (s.migrated as f64) < 0.2 * 512.0,
                "step {} moved {} of 512 particles",
                s.step,
                s.migrated
            );
        }
    }

    #[test]
    fn skew_one_threshold_repartitions_every_step() {
        let stats = ranks::run(2, CommCost::default(), |ctx| {
            let ic = subsonic_turbulence(8, 0.3, 11);
            let cfg = SimConfig {
                repart_skew_threshold: 0.99,
                ..small_cfg(40)
            };
            let mut sim = Simulation::distribute(ic, cfg, ctx.rank(), ctx.size());
            (0..3)
                .map(|_| sim.step(ctx, &mut NullObserver))
                .collect::<Vec<_>>()
        })
        .remove(0);
        // Skew is always >= 1.0, so a sub-1 threshold rebuilds every step —
        // the knob CI's scaling smoke test uses to exercise repartitioning.
        for s in &stats {
            assert!(
                s.repartitioned,
                "sub-1 threshold must force rebuilds (skew {})",
                s.skew
            );
        }
    }

    #[test]
    fn observer_sees_every_function_in_order() {
        struct Recorder(Vec<FuncId>, Vec<FuncId>);
        impl StepObserver for Recorder {
            fn before(&mut self, f: FuncId, _ctx: &mut RankCtx) {
                self.0.push(f);
            }
            fn after(
                &mut self,
                f: FuncId,
                w: &KernelWorkload,
                _h: SimDuration,
                _ctx: &mut RankCtx,
            ) {
                assert_eq!(w.name, f.name());
                self.1.push(f);
            }
        }
        let funcs = ranks::run(1, CommCost::default(), |ctx| {
            let ic = subsonic_turbulence(6, 0.3, 2);
            let mut sim = Simulation::new(ic, small_cfg(30));
            let mut rec = Recorder(Vec::new(), Vec::new());
            sim.step(ctx, &mut rec);
            assert_eq!(rec.0, rec.1, "before/after must pair up");
            rec.0
        });
        let expected: Vec<FuncId> = FuncId::ALL
            .into_iter()
            .filter(|f| *f != FuncId::Gravity)
            .collect();
        assert_eq!(funcs[0], expected);

        // Evrard includes Gravity.
        let funcs = ranks::run(1, CommCost::default(), |ctx| {
            let ic = evrard(8);
            let mut sim = Simulation::new(ic, small_cfg(30));
            let mut rec = Recorder(Vec::new(), Vec::new());
            sim.step(ctx, &mut rec);
            rec.0
        });
        assert!(funcs[0].contains(&FuncId::Gravity));
        assert_eq!(funcs[0].len(), 12);
    }

    #[test]
    fn active_funcs_reflects_gravity() {
        let turb = Simulation::new(subsonic_turbulence(4, 0.1, 0), small_cfg(30));
        assert!(!turb.active_funcs().contains(&FuncId::Gravity));
        let evr = Simulation::new(evrard(6), small_cfg(30));
        assert!(evr.active_funcs().contains(&FuncId::Gravity));
    }
}
