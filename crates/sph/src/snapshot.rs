//! Versioned binary snapshots of one rank's owned particle state.
//!
//! The checkpoint/restart layer persists exactly the carried state of the
//! step loop: every field a step reads before writing is in the 13-field
//! halo/migration pack (`x y z vx vy vz m h rho p c u alpha` — rates,
//! grad-h terms, IAD tensors and switches are recomputed from these by the
//! first restored step), so a snapshot is the pack of the owned range plus
//! a small header.
//!
//! Layout (all little-endian):
//!
//! ```text
//! v1:  "FSNP" | u32 version=1 | u64 n_local | n_local × 13 × f64
//! v2:  "FSNP" | u32 version=2 | u64 n_local | n_local × 13 × f64 | u64 fnv1a
//! ```
//!
//! v2 appends an FNV-1a checksum over everything before it, so a truncated
//! or bit-flipped snapshot is detected at load. The loader accepts both
//! versions — v1 fixtures stay loadable forever (mirroring the TableStore
//! v1/v2 discipline).

use crate::particles::Particles;

/// Snapshot magic: the first four bytes of every rank snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"FSNP";

/// Version the current writer emits.
pub const SNAPSHOT_VERSION: u32 = 2;

/// FNV-1a 64-bit over a byte slice — the dependency-free checksum used by
/// snapshot trailers and state digests.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialize the owned range of `parts` as a v2 snapshot.
pub fn encode_particles(parts: &Particles) -> Vec<u8> {
    let indices: Vec<usize> = (0..parts.n_local).collect();
    let payload = parts.pack_halo(&indices);
    let mut out = Vec::with_capacity(16 + payload.len() * 8 + 8);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(parts.n_local as u64).to_le_bytes());
    for v in &payload {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Deserialize a v1 or v2 snapshot into a fresh owned particle set.
///
/// Errors (bad magic, unknown version, truncation, checksum mismatch) are
/// returned as messages — the caller decides whether to cold-start or die;
/// this function never panics on bad bytes.
pub fn decode_particles(bytes: &[u8]) -> Result<Particles, String> {
    if bytes.len() < 16 {
        return Err(format!(
            "snapshot truncated: {} bytes < header",
            bytes.len()
        ));
    }
    if bytes[0..4] != SNAPSHOT_MAGIC {
        return Err("snapshot magic mismatch (not an FSNP file)".to_string());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version == 0 || version > SNAPSHOT_VERSION {
        return Err(format!(
            "snapshot version {version} unsupported (this build reads 1..={SNAPSHOT_VERSION})"
        ));
    }
    let n = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let payload_len = n
        .checked_mul(Particles::PACK_FIELDS * 8)
        .ok_or_else(|| "snapshot particle count overflows".to_string())?;
    let expected = 16 + payload_len + if version >= 2 { 8 } else { 0 };
    if bytes.len() != expected {
        return Err(format!(
            "snapshot truncated: {got} bytes, expected {expected} for {n} particles (v{version})",
            got = bytes.len()
        ));
    }
    if version >= 2 {
        let body_end = 16 + payload_len;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
        let actual = fnv1a(&bytes[..body_end]);
        if stored != actual {
            return Err(format!(
                "snapshot checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            ));
        }
    }
    let payload: Vec<f64> = bytes[16..16 + payload_len]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunks")))
        .collect();
    let mut parts = Particles::new();
    parts.unpack_halo(&payload);
    parts.n_local = parts.len();
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Particles {
        let mut p = Particles::new();
        p.push(0.1, 0.2, 0.3, 1.0, -0.5, 0.25, 2.0, 0.05, 1.5);
        p.push(0.4, 0.5, 0.6, 0.0, 1.0, 0.0, 3.0, 0.06, 1.6);
        p.push(0.7, 0.8, 0.9, 0.0, 0.0, 1.0, 4.0, 0.07, 1.7);
        p.rho[0] = 1.25;
        p.p[1] = 0.5;
        p.c[2] = 0.9;
        p.alpha[1] = 0.42;
        p
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let src = sample();
        let bytes = encode_particles(&src);
        let back = decode_particles(&bytes).expect("valid snapshot");
        assert_eq!(back.n_local, 3);
        assert_eq!(back.len(), 3);
        for i in 0..3 {
            assert_eq!(back.x[i].to_bits(), src.x[i].to_bits());
            assert_eq!(back.vy[i].to_bits(), src.vy[i].to_bits());
            assert_eq!(back.rho[i].to_bits(), src.rho[i].to_bits());
            assert_eq!(back.alpha[i].to_bits(), src.alpha[i].to_bits());
            assert_eq!(back.h[i].to_bits(), src.h[i].to_bits());
        }
    }

    #[test]
    fn snapshot_excludes_halos() {
        let mut src = sample();
        let donor = sample();
        src.append_halos(&donor, &[0, 1]);
        assert_eq!(src.len(), 5);
        let back = decode_particles(&encode_particles(&src)).expect("valid");
        assert_eq!(back.len(), 3, "halos must not be persisted");
    }

    #[test]
    fn v1_snapshot_without_trailer_still_loads() {
        let v2 = encode_particles(&sample());
        // Rewrite as v1: version field 1, checksum trailer dropped.
        let mut v1 = v2[..v2.len() - 8].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let back = decode_particles(&v1).expect("v1 loads");
        assert_eq!(back.n_local, 3);
        assert_eq!(back.m[2], 4.0);
    }

    #[test]
    fn corruption_is_detected() {
        let good = encode_particles(&sample());

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let err = decode_particles(&flipped).expect_err("bit flip detected");
        assert!(err.contains("checksum"), "{err}");

        let truncated = &good[..good.len() - 20];
        let err = decode_particles(truncated).expect_err("truncation detected");
        assert!(err.contains("truncated"), "{err}");

        let err = decode_particles(b"not a snapshot at all").expect_err("bad magic");
        assert!(err.contains("magic"), "{err}");

        let mut future = good.clone();
        future[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = decode_particles(&future).expect_err("future version rejected");
        assert!(err.contains("version 99"), "{err}");
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pin the constants: fixtures on disk depend on this exact hash.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
