//! `Timestep`: CFL and acceleration time-step limits. The global minimum is
//! a collective reduction — the end-of-step communication whose GPU-idle dip
//! Fig. 9 shows.

use crate::particles::Particles;

/// CFL safety factor (SPH-EXA default ballpark).
pub const CFL: f64 = 0.3;
/// Acceleration-limit safety factor.
pub const ACC_SAFETY: f64 = 0.25;
/// Maximum growth per step (avoids dt whiplash after quiet phases).
pub const MAX_GROWTH: f64 = 1.2;

/// Local (per-rank) time-step limit.
pub fn local_timestep(parts: &Particles, prev_dt: f64) -> f64 {
    let mut dt = f64::INFINITY;
    for i in 0..parts.n_local {
        let h = parts.h[i];
        // Signal speed: sound + bulk motion.
        let v = (parts.vx[i].powi(2) + parts.vy[i].powi(2) + parts.vz[i].powi(2)).sqrt();
        let sig = parts.c[i] + v;
        if sig > 0.0 {
            dt = dt.min(CFL * h / sig);
        }
        let a = (parts.ax[i].powi(2) + parts.ay[i].powi(2) + parts.az[i].powi(2)).sqrt();
        if a > 0.0 {
            dt = dt.min(ACC_SAFETY * (h / a).sqrt());
        }
    }
    if prev_dt > 0.0 {
        dt = dt.min(prev_dt * MAX_GROWTH);
    }
    if dt.is_finite() {
        dt
    } else {
        // Cold, static gas: fall back to a crossing-time-scale guess.
        1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn particle(c: f64, v: f64, a: f64, h: f64) -> Particles {
        let mut p = Particles::new();
        p.push(0.0, 0.0, 0.0, v, 0.0, 0.0, 1.0, h, 1.0);
        p.c[0] = c;
        p.ax[0] = a;
        p
    }

    #[test]
    fn cfl_limit_dominates_for_fast_sound() {
        let p = particle(10.0, 0.0, 0.0, 0.1);
        let dt = local_timestep(&p, 0.0);
        assert!((dt - CFL * 0.1 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn acceleration_limit_dominates_for_strong_forces() {
        let p = particle(0.001, 0.0, 1e6, 0.1);
        let dt = local_timestep(&p, 0.0);
        let expect = ACC_SAFETY * (0.1f64 / 1e6).sqrt();
        assert!((dt - expect).abs() < 1e-12);
    }

    #[test]
    fn growth_is_rate_limited() {
        let p = particle(0.01, 0.0, 0.0, 0.1);
        let dt = local_timestep(&p, 1e-4);
        assert!(
            (dt - 1.2e-4).abs() < 1e-12,
            "dt {dt} should be capped at 1.2*prev"
        );
    }

    #[test]
    fn static_cold_gas_gets_fallback() {
        let p = particle(0.0, 0.0, 0.0, 0.1);
        assert_eq!(local_timestep(&p, 0.0), 1e-3);
    }

    #[test]
    fn bulk_velocity_tightens_cfl() {
        let slow = local_timestep(&particle(1.0, 0.0, 0.0, 0.1), 0.0);
        let fast = local_timestep(&particle(1.0, 5.0, 0.0, 0.1), 0.0);
        assert!(fast < slow);
    }
}
