//! `UpdateQuantities`: integrate positions, velocities, internal energy and
//! adapt smoothing lengths toward the target neighbor count.

use cornerstone::Box3;

use crate::particles::Particles;

/// Target neighbor count (SPH-EXA uses ~100 at production scale; the scale
/// model assumes the same).
pub const TARGET_NEIGHBORS: usize = 100;
/// Floor for the specific internal energy (keeps the ideal-gas EOS sane).
pub const U_FLOOR: f64 = 1e-10;

/// Semi-implicit Euler update for owned particles; positions wrap in
/// periodic boxes.
pub fn update_quantities(parts: &mut Particles, dt: f64, bbox: &Box3) {
    for i in 0..parts.n_local {
        parts.vx[i] += parts.ax[i] * dt;
        parts.vy[i] += parts.ay[i] * dt;
        parts.vz[i] += parts.az[i] * dt;
        let nx = parts.x[i] + parts.vx[i] * dt;
        let ny = parts.y[i] + parts.vy[i] * dt;
        let nz = parts.z[i] + parts.vz[i] * dt;
        let (wx, wy, wz) = bbox.wrap(nx, ny, nz);
        parts.x[i] = wx;
        parts.y[i] = wy;
        parts.z[i] = wz;
        parts.u[i] = (parts.u[i] + parts.du[i] * dt).max(U_FLOOR);
    }
}

/// Adapt smoothing lengths from measured neighbor counts `nn` (excluding
/// self), nudging toward [`TARGET_NEIGHBORS`] with the cube-root rule SPH
/// codes use. `target` overrides the default for small test systems.
pub fn update_smoothing_lengths(parts: &mut Particles, nn: &[usize], target: usize) {
    assert_eq!(nn.len(), parts.n_local);
    let t = target.max(1) as f64;
    for (i, &count) in nn.iter().enumerate() {
        let n = count as f64;
        let ratio = (t / (n + 1.0)).cbrt();
        // Half-step damping avoids oscillation of the h iteration.
        let factor = 0.5 * (1.0 + ratio);
        parts.h[i] *= factor.clamp(0.8, 1.25);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn particle() -> Particles {
        let mut p = Particles::new();
        p.push(0.9, 0.5, 0.5, 1.0, 0.0, 0.0, 1.0, 0.1, 1.0);
        p
    }

    #[test]
    fn euler_update_moves_and_accelerates() {
        let mut p = particle();
        p.ax[0] = 2.0;
        let bbox = Box3::cube(0.0, 10.0, false);
        update_quantities(&mut p, 0.5, &bbox);
        assert!((p.vx[0] - 2.0).abs() < 1e-12, "v += a dt");
        assert!((p.x[0] - 1.9).abs() < 1e-12, "x += v_new dt");
    }

    #[test]
    fn periodic_positions_wrap() {
        let mut p = particle();
        let bbox = Box3::unit_periodic();
        update_quantities(&mut p, 0.5, &bbox); // x = 0.9 + 0.5 -> 0.4
        assert!((p.x[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn internal_energy_floored() {
        let mut p = particle();
        p.du[0] = -1e9;
        update_quantities(&mut p, 1.0, &Box3::unit_periodic());
        assert_eq!(p.u[0], U_FLOOR);
    }

    #[test]
    fn smoothing_length_moves_toward_target() {
        let mut p = particle();
        let h0 = p.h[0];
        update_smoothing_lengths(&mut p, &[10], 100);
        assert!(p.h[0] > h0, "too few neighbors -> h grows");
        let mut p2 = particle();
        update_smoothing_lengths(&mut p2, &[500], 100);
        assert!(p2.h[0] < h0, "too many neighbors -> h shrinks");
        let mut p3 = particle();
        update_smoothing_lengths(&mut p3, &[100], 100);
        assert!(
            (p3.h[0] - h0).abs() / h0 < 0.01,
            "at target -> nearly unchanged"
        );
    }

    #[test]
    fn smoothing_update_is_rate_limited() {
        let mut p = particle();
        let h0 = p.h[0];
        update_smoothing_lengths(&mut p, &[0], 100);
        assert!(p.h[0] <= h0 * 1.25 + 1e-12);
        let mut p2 = particle();
        update_smoothing_lengths(&mut p2, &[100_000], 100);
        assert!(p2.h[0] >= h0 * 0.8 - 1e-12);
    }
}
