//! Blocked-vs-scalar sweep equivalence.
//!
//! Every sweep dispatches to the cache-blocked CSR row path when handed a
//! [`NeighborList`] and to the per-pair callback path when handed anything
//! else — including [`ScalarReplay`], which replays the *same* list through
//! the callback interface. Comparing the two isolates exactly the blocked
//! engine (lane buffers, fused row kernels, vectorized compaction,
//! momentum's select-then-batch survivor pass) with the traversal held
//! fixed. The list is built with the h-aware adaptive pair rule over
//! per-particle radii `1.4 · support(h_i)`, exactly as `Simulation::step`
//! builds it.
//!
//! Under default features the paths must agree bit-for-bit. Under
//! `fast-math` the lane reductions reassociate and `Sinc5` uses polynomial
//! sinc, so fields are compared to tolerance instead — and the IAD tensor
//! fields are exempted in the random property test: near-singular moment
//! matrices can flip `invert_sym3` between its inverse and fallback
//! branches on an epsilon perturbation, which is a discontinuity of the
//! scheme, not a defect of the blocked engine (divv/curlv stay compared on
//! well-conditioned configurations in the unit tests).

use cornerstone::{Box3, CellList, NeighborList, ScalarReplay};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use sph::density::{density_gradh, neighbor_counts};
use sph::iad::iad_divv_curlv;
use sph::momentum::momentum_energy;
use sph::{Eos, Kernel, Particles};

const KERNELS: [Kernel; 3] = [Kernel::CubicSpline, Kernel::WendlandC6, Kernel::Sinc5];

/// A random cloud with varied masses and smoothing lengths plus random
/// velocities, so every sweep term (AV included) participates.
fn cloud(n: usize, seed: u64, periodic: bool) -> (Particles, Box3) {
    let bbox = Box3::cube(0.0, 1.0, periodic);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parts = Particles::new();
    // Spacing targets a realistic neighbor count for the cloud size.
    let spacing = 1.0 / (n as f64).cbrt().max(1.0);
    for _ in 0..n {
        let h = (0.8 + 0.4 * rng.random::<f64>()) * 1.3 * spacing.min(0.35);
        parts.push(
            rng.random::<f64>(),
            rng.random::<f64>(),
            rng.random::<f64>(),
            rng.random::<f64>() - 0.5,
            rng.random::<f64>() - 0.5,
            rng.random::<f64>() - 0.5,
            (0.5 + rng.random::<f64>()) / n as f64,
            h,
            0.5 + rng.random::<f64>(),
        );
    }
    (parts, bbox)
}

fn h_max(parts: &Particles) -> f64 {
    parts.h.iter().cloned().fold(0.0, f64::max)
}

/// Run the full sweep sequence (counts, density+EOS, IAD, momentum) over
/// one neighbor source.
fn run_sweeps<N: cornerstone::NeighborSearch + Sync>(
    parts: &mut Particles,
    nb: &N,
    bbox: &Box3,
    kernel: Kernel,
) -> Vec<usize> {
    let counts = neighbor_counts(parts, nb, bbox, kernel);
    density_gradh(parts, nb, bbox, kernel);
    Eos::ideal_monatomic().apply(parts);
    iad_divv_curlv(parts, nb, bbox, kernel);
    momentum_energy(parts, nb, bbox, kernel);
    counts
}

/// Execute blocked and scalar paths over the same prebuilt list; return
/// (blocked, scalar) particle states and their neighbor counts.
fn run_both(
    parts: &Particles,
    bbox: &Box3,
    kernel: Kernel,
) -> ((Particles, Vec<usize>), (Particles, Vec<usize>)) {
    let radius = kernel.support(h_max(parts)) * 1.4;
    let grid = CellList::build(&parts.x, &parts.y, &parts.z, bbox, radius);
    let radii: Vec<f64> = parts.h.iter().map(|&h| kernel.support(h) * 1.4).collect();
    let mut nl = NeighborList::new();
    nl.build_adaptive_into(&grid, &parts.x, &parts.y, &parts.z, parts.len(), &radii);
    let mut blocked = parts.clone();
    let cb = run_sweeps(&mut blocked, &nl, bbox, kernel);
    let mut scalar = parts.clone();
    let cs = run_sweeps(&mut scalar, &ScalarReplay(&nl), bbox, kernel);
    ((blocked, cb), (scalar, cs))
}

/// Default features: bitwise. fast-math: relative tolerance.
#[cfg(not(feature = "fast-math"))]
fn assert_field_eq(name: &str, a: &[f64], b: &[f64]) -> Result<(), String> {
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{name}[{k}]: {x:e} != {y:e} (bitwise)"));
        }
    }
    Ok(())
}

#[cfg(feature = "fast-math")]
fn assert_field_eq(name: &str, a: &[f64], b: &[f64]) -> Result<(), String> {
    let scale = b.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        if (x - y).abs() > 1e-5 * scale {
            return Err(format!("{name}[{k}]: {x:e} vs {y:e} (scale {scale:e})"));
        }
    }
    Ok(())
}

fn compare(blocked: &Particles, scalar: &Particles, with_iad: bool) {
    let fields: &[(&str, &Vec<f64>, &Vec<f64>)] = &[
        ("rho", &blocked.rho, &scalar.rho),
        ("gradh", &blocked.gradh, &scalar.gradh),
        ("divv", &blocked.divv, &scalar.divv),
        ("curlv", &blocked.curlv, &scalar.curlv),
        ("ax", &blocked.ax, &scalar.ax),
        ("ay", &blocked.ay, &scalar.ay),
        ("az", &blocked.az, &scalar.az),
        ("du", &blocked.du, &scalar.du),
        ("c11", &blocked.c11, &scalar.c11),
        ("c12", &blocked.c12, &scalar.c12),
        ("c13", &blocked.c13, &scalar.c13),
        ("c22", &blocked.c22, &scalar.c22),
        ("c23", &blocked.c23, &scalar.c23),
        ("c33", &blocked.c33, &scalar.c33),
    ];
    for (name, a, b) in fields {
        if !with_iad && (name.starts_with('c') || *name == "divv" || *name == "curlv") {
            continue;
        }
        if let Err(e) = assert_field_eq(name, a, b) {
            panic!("{e}");
        }
    }
}

#[test]
fn blocked_sweeps_match_scalar_on_random_clouds() {
    for kernel in KERNELS {
        for periodic in [true, false] {
            let (parts, bbox) = cloud(250, 42, periodic);
            let ((blocked, cb), (scalar, cs)) = run_both(&parts, &bbox, kernel);
            assert_eq!(cb, cs, "{kernel:?} periodic={periodic}: neighbor counts");
            compare(&blocked, &scalar, true);
        }
    }
}

#[test]
fn blocked_sweeps_match_scalar_on_a_dense_lattice() {
    // Well-conditioned IAD tensors: the tensor fields are comparable even
    // under fast-math tolerances.
    let bbox = Box3::unit_periodic();
    let mut parts = Particles::new();
    let n_side = 6;
    let spacing = 1.0 / n_side as f64;
    let mut rng = StdRng::seed_from_u64(7);
    for ix in 0..n_side {
        for iy in 0..n_side {
            for iz in 0..n_side {
                let mut j = || (rng.random::<f64>() - 0.5) * 0.2 * spacing;
                parts.push(
                    (ix as f64 + 0.5) * spacing + j(),
                    (iy as f64 + 0.5) * spacing + j(),
                    (iz as f64 + 0.5) * spacing + j(),
                    j(),
                    j(),
                    j(),
                    1.0 / 216.0,
                    1.3 * spacing,
                    1.0,
                );
            }
        }
    }
    for kernel in KERNELS {
        let ((blocked, cb), (scalar, cs)) = run_both(&parts, &bbox, kernel);
        assert_eq!(cb, cs, "{kernel:?}: neighbor counts");
        compare(&blocked, &scalar, true);
    }
}

#[test]
fn tiny_clusters_exercise_every_remainder_lane_length() {
    // Neighbor counts 0..=5 per row: every length-mod-4 class of the 4-lane
    // remainder handling, including rows shorter than one chunk.
    for n in 1usize..=6 {
        for periodic in [true, false] {
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let mut parts = Particles::new();
            for k in 0..n {
                parts.push(
                    0.5 + 0.004 * k as f64,
                    0.5,
                    0.5,
                    0.1 * k as f64,
                    -0.05 * k as f64,
                    0.02,
                    1.0,
                    0.02,
                    1.0,
                );
            }
            for kernel in KERNELS {
                let ((blocked, cb), (scalar, cs)) = run_both(&parts, &bbox, kernel);
                assert_eq!(cb, cs, "n={n} {kernel:?}: neighbor counts");
                assert!(cb.iter().all(|&c| c == n - 1), "cluster is fully connected");
                compare(&blocked, &scalar, true);
            }
        }
    }
}

#[test]
fn isolated_particle_has_an_empty_neighbor_row() {
    // Row = self only: the blocked path must produce the pure
    // self-contribution density and zero forces, like the scalar path.
    let bbox = Box3::cube(0.0, 1.0, false);
    let mut parts = Particles::new();
    parts.push(0.5, 0.5, 0.5, 0.0, 0.0, 0.0, 2.0, 0.05, 1.0);
    let kernel = Kernel::Sinc5;
    let ((blocked, cb), (scalar, _)) = run_both(&parts, &bbox, kernel);
    assert_eq!(cb, vec![0]);
    compare(&blocked, &scalar, true);
    assert_eq!(blocked.ax[0], 0.0);
    assert!(blocked.rho[0] > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_blocked_matches_scalar(
        seed in 0u64..10_000,
        n in 1usize..40,
        periodic in proptest::bool::ANY,
        kidx in 0usize..3,
    ) {
        let kernel = KERNELS[kidx];
        let (parts, bbox) = cloud(n, seed, periodic);
        let ((blocked, cb), (scalar, cs)) = run_both(&parts, &bbox, kernel);
        prop_assert_eq!(cb, cs);
        // IAD fields only under exact math: random tiny clouds can sit on
        // the invert_sym3 singularity threshold, where fast-math's epsilon
        // perturbation flips branches (see module docs).
        compare(&blocked, &scalar, cfg!(not(feature = "fast-math")));
    }
}
