//! Data model shared by the live recorder and the exporters.
//!
//! Everything here is compiled in both modes: with the `enabled` feature off
//! the recorder never produces any of it, but the exporters still accept a
//! (then always-empty) [`TraceData`], so downstream code needs no `cfg`.

use std::collections::BTreeMap;
use std::fmt;

/// A typed span/event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    I64(i64),
    U64(u64),
    F64(f64),
    Bool(bool),
    /// Static label (the common case — no allocation).
    Str(&'static str),
    /// Owned label; call sites should gate construction on
    /// [`crate::active`] so the allocation only happens while recording.
    String(String),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::String(v) => write!(f, "{v}"),
        }
    }
}

/// Key/value field list attached to spans and instants.
pub type Fields = Vec<(&'static str, Value)>;

/// One closed span: `[wall_start, wall_end)` nanoseconds since the session
/// anchor, plus an optional virtual-time range for events that live on the
/// simulation clock (SPH functions, kernel regions, comm ops).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub cat: &'static str,
    pub name: &'static str,
    pub wall_start_ns: u64,
    pub wall_end_ns: u64,
    pub sim_start_ns: Option<u64>,
    pub sim_end_ns: Option<u64>,
    pub fields: Fields,
}

impl SpanRecord {
    /// True when the span carries a virtual-time range (both endpoints).
    pub fn has_sim_range(&self) -> bool {
        self.sim_start_ns.is_some() && self.sim_end_ns.is_some()
    }
}

/// One point event (a decision, a clock pin, ...).
#[derive(Debug, Clone)]
pub struct InstantRecord {
    pub cat: &'static str,
    pub name: &'static str,
    pub wall_ns: u64,
    pub sim_ns: Option<u64>,
    pub fields: Fields,
}

/// Everything one recording thread produced, in record order.
#[derive(Debug, Clone)]
pub enum Event {
    Span(SpanRecord),
    Instant(InstantRecord),
}

/// One thread's track: its label plus its events.
#[derive(Debug, Clone, Default)]
pub struct TrackData {
    pub name: String,
    pub events: Vec<Event>,
}

/// Log-bucketed (base-2) histogram snapshot. Bucket `i` counts samples in
/// `(2^i, 2^(i+1)]`; exponents are clamped to `±HISTO_EXP_CLAMP`.
#[derive(Debug, Clone, Default)]
pub struct HistoSnapshot {
    pub name: String,
    pub buckets: BTreeMap<i32, u64>,
    pub count: u64,
    pub sum: f64,
}

/// Exponent clamp for histogram buckets (2^±64 covers ns..hours and nJ..GJ).
pub const HISTO_EXP_CLAMP: i32 = 64;

/// Bucket exponent for a sample: smallest `i` with `v <= 2^i`.
pub fn histo_bucket(v: f64) -> i32 {
    if !v.is_finite() || v <= 0.0 {
        return -HISTO_EXP_CLAMP;
    }
    (v.log2().ceil() as i32).clamp(-HISTO_EXP_CLAMP, HISTO_EXP_CLAMP)
}

/// The full payload of one recording session, as returned by
/// [`crate::stop`]. With the `enabled` feature off this is always
/// [`TraceData::default`].
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    pub tracks: Vec<TrackData>,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistoSnapshot>,
    /// Wall-clock length of the session, nanoseconds.
    pub session_ns: u64,
    /// Wall time the recorder itself spent appending records — the
    /// measurement-overhead figure the paper's §III-B discussion asks every
    /// in-app instrumentation layer to report.
    pub overhead_ns: u64,
    /// Events discarded because a per-thread buffer hit its cap.
    pub dropped: u64,
}

impl TraceData {
    /// Total recorded spans across all tracks.
    pub fn span_count(&self) -> usize {
        self.tracks
            .iter()
            .map(|t| {
                t.events
                    .iter()
                    .filter(|e| matches!(e, Event::Span(_)))
                    .count()
            })
            .sum()
    }

    /// Total recorded instants across all tracks.
    pub fn instant_count(&self) -> usize {
        self.tracks
            .iter()
            .map(|t| {
                t.events
                    .iter()
                    .filter(|e| matches!(e, Event::Instant(_)))
                    .count()
            })
            .sum()
    }

    /// Recorder self-cost as a fraction of the session wall time (0 when
    /// nothing was recorded or the session had zero length).
    pub fn overhead_fraction(&self) -> f64 {
        if self.session_ns == 0 {
            0.0
        } else {
            self.overhead_ns as f64 / self.session_ns as f64
        }
    }

    /// One-line human summary of the recorder's own cost.
    pub fn overhead_summary(&self) -> String {
        format!(
            "telemetry: {} spans + {} instants in {:.3} s; recorder self-cost {:.3} ms ({:.4}% of wall){}",
            self.span_count(),
            self.instant_count(),
            self.session_ns as f64 / 1e9,
            self.overhead_ns as f64 / 1e6,
            self.overhead_fraction() * 100.0,
            if self.dropped > 0 {
                format!("; {} events dropped at buffer cap", self.dropped)
            } else {
                String::new()
            }
        )
    }
}
