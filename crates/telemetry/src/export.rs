//! Exporters over [`TraceData`]: Chrome-trace/Perfetto JSON, CSV timelines
//! merged with power samples, and Prometheus-style text metrics.
//!
//! All three are pure functions of a [`TraceData`] snapshot, so they compile
//! (and produce valid, empty output) even when the recorder itself is
//! compiled out.

use std::fmt::Write as _;

use crate::data::{Event, HistoSnapshot, TraceData, Value, HISTO_EXP_CLAMP};

/// Chrome-trace process id used for events on the *simulation* clock.
pub const PID_SIM: u32 = 1;
/// Chrome-trace process id used for events on the *wall* clock.
pub const PID_WALL: u32 = 2;

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_value(out: &mut String, v: &Value) {
    match v {
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            out.push('"');
            esc(out, s);
            out.push('"');
        }
        Value::String(s) => {
            out.push('"');
            esc(out, s);
            out.push('"');
        }
    }
}

fn json_args(out: &mut String, fields: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        esc(out, k);
        out.push_str("\":");
        json_value(out, v);
    }
    out.push('}');
}

#[allow(clippy::too_many_arguments)]
fn event_line(
    out: &mut String,
    first: &mut bool,
    name: &str,
    cat: &str,
    ph: &str,
    pid: u32,
    tid: usize,
    ts_us: f64,
    fields: Option<&[(&'static str, Value)]>,
    instant_scope: bool,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  {\"name\":\"");
    esc(out, name);
    out.push_str("\",\"cat\":\"");
    esc(out, cat);
    let _ = write!(
        out,
        "\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us:.3}"
    );
    if instant_scope {
        out.push_str(",\"s\":\"t\"");
    }
    if let Some(f) = fields {
        out.push_str(",\"args\":");
        json_args(out, f);
    }
    out.push('}');
}

fn meta_line(
    out: &mut String,
    first: &mut bool,
    kind: &str,
    pid: u32,
    tid: Option<usize>,
    name: &str,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  {\"name\":\"");
    out.push_str(kind);
    let _ = write!(out, "\",\"ph\":\"M\",\"pid\":{pid}");
    if let Some(t) = tid {
        let _ = write!(out, ",\"tid\":{t}");
    }
    out.push_str(",\"args\":{\"name\":\"");
    esc(out, name);
    out.push_str("\"}}");
}

/// Render the session as Chrome-trace JSON (load in `chrome://tracing` or
/// <https://ui.perfetto.dev>). Two "processes" separate the clock domains:
/// pid 1 carries events with a virtual-time range (`ts` = sim microseconds),
/// pid 2 carries wall-clock events (`ts` = microseconds since session
/// start). Within each, one thread track per recording thread. Spans emit
/// matched `B`/`E` pairs; point events emit `i`.
pub fn chrome_trace(data: &TraceData) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    meta_line(
        &mut out,
        &mut first,
        "process_name",
        PID_SIM,
        None,
        "sim-time",
    );
    meta_line(
        &mut out,
        &mut first,
        "process_name",
        PID_WALL,
        None,
        "wall-clock",
    );
    for (tid, track) in data.tracks.iter().enumerate() {
        meta_line(
            &mut out,
            &mut first,
            "thread_name",
            PID_SIM,
            Some(tid),
            &track.name,
        );
        meta_line(
            &mut out,
            &mut first,
            "thread_name",
            PID_WALL,
            Some(tid),
            &track.name,
        );
    }
    for (tid, track) in data.tracks.iter().enumerate() {
        for ev in &track.events {
            match ev {
                Event::Span(s) => {
                    let (pid, t0, t1) = if s.has_sim_range() {
                        (
                            PID_SIM,
                            s.sim_start_ns.unwrap_or(0) as f64 / 1e3,
                            s.sim_end_ns.unwrap_or(0) as f64 / 1e3,
                        )
                    } else {
                        (
                            PID_WALL,
                            s.wall_start_ns as f64 / 1e3,
                            s.wall_end_ns as f64 / 1e3,
                        )
                    };
                    event_line(
                        &mut out,
                        &mut first,
                        s.name,
                        s.cat,
                        "B",
                        pid,
                        tid,
                        t0,
                        Some(&s.fields),
                        false,
                    );
                    event_line(
                        &mut out, &mut first, s.name, s.cat, "E", pid, tid, t1, None, false,
                    );
                }
                Event::Instant(i) => {
                    let (pid, ts) = match i.sim_ns {
                        Some(ns) => (PID_SIM, ns as f64 / 1e3),
                        None => (PID_WALL, i.wall_ns as f64 / 1e3),
                    };
                    event_line(
                        &mut out,
                        &mut first,
                        i.name,
                        i.cat,
                        "i",
                        pid,
                        tid,
                        ts,
                        Some(&i.fields),
                        true,
                    );
                }
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Render a flat CSV timeline merging span boundaries (and instants) with
/// externally supplied power samples — `power` entries are
/// `(seconds, watts)` pairs on the same simulation clock the spans use
/// (e.g. a `PowerTimeline::sample_average` trace). Rows are sorted by time,
/// so the file lines up kernel activity against the power draw it caused —
/// the per-function energy-attribution view of the paper's §III-B.
pub fn csv_timeline(data: &TraceData, power: &[(f64, f64)]) -> String {
    // (t_s, kind, track, cat, name, value)
    let mut rows: Vec<(f64, &str, &str, &str, String, String)> = Vec::new();
    for track in &data.tracks {
        for ev in &track.events {
            match ev {
                Event::Span(s) => {
                    let (t0, t1) = if s.has_sim_range() {
                        (
                            s.sim_start_ns.unwrap_or(0) as f64 / 1e9,
                            s.sim_end_ns.unwrap_or(0) as f64 / 1e9,
                        )
                    } else {
                        (s.wall_start_ns as f64 / 1e9, s.wall_end_ns as f64 / 1e9)
                    };
                    rows.push((
                        t0,
                        "span_begin",
                        &track.name,
                        s.cat,
                        s.name.to_string(),
                        String::new(),
                    ));
                    rows.push((
                        t1,
                        "span_end",
                        &track.name,
                        s.cat,
                        s.name.to_string(),
                        String::new(),
                    ));
                }
                Event::Instant(i) => {
                    let t = i
                        .sim_ns
                        .map_or(i.wall_ns as f64 / 1e9, |ns| ns as f64 / 1e9);
                    let detail = i
                        .fields
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(";");
                    rows.push((t, "instant", &track.name, i.cat, i.name.to_string(), detail));
                }
            }
        }
    }
    for &(t, w) in power {
        rows.push((
            t,
            "power",
            "device",
            "power",
            "gpu_w".to_string(),
            format!("{w:.3}"),
        ));
    }
    rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out = String::from("t_s,kind,track,cat,name,value\n");
    for (t, kind, track, cat, name, value) in rows {
        let _ = writeln!(out, "{t:.9},{kind},{track},{cat},{name},{value}");
    }
    out
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    format!("freqscale_{s}")
}

fn histo_text(out: &mut String, h: &HistoSnapshot) {
    let name = sanitize(&h.name);
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (&exp, &n) in &h.buckets {
        cum += n;
        let le = if exp >= HISTO_EXP_CLAMP {
            "+Inf".to_string()
        } else {
            format!("{}", 2f64.powi(exp))
        };
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
    }
    if !h.buckets.contains_key(&HISTO_EXP_CLAMP) {
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render counters, gauges and histograms as Prometheus exposition text,
/// plus the recorder's own self-cost gauges.
pub fn metrics_text(data: &TraceData) -> String {
    let mut out = String::with_capacity(1024);
    for (name, v) in &data.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &data.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for h in &data.histograms {
        histo_text(&mut out, h);
    }
    let _ = writeln!(out, "# TYPE freqscale_telemetry_overhead_ns gauge");
    let _ = writeln!(out, "freqscale_telemetry_overhead_ns {}", data.overhead_ns);
    let _ = writeln!(out, "# TYPE freqscale_telemetry_session_ns gauge");
    let _ = writeln!(out, "freqscale_telemetry_session_ns {}", data.session_ns);
    let _ = writeln!(out, "# TYPE freqscale_telemetry_dropped_events gauge");
    let _ = writeln!(out, "freqscale_telemetry_dropped_events {}", data.dropped);
    out
}
