//! Dependency-free structured tracing + metrics for the freq-scaling
//! workspace — the in-application observability layer the source paper's
//! measurement methodology calls for (per-function energy attribution needs
//! per-function *events* first).
//!
//! # Model
//!
//! - A process-global recorder with **per-thread span buffers**. Threads
//!   register lazily on first record; [`set_track`] labels a thread's track
//!   (ranks call it `rank-N`).
//! - **Spans** are RAII guards from [`span_start`] (category + name +
//!   key/value [`Value`] fields), recorded on drop. Each span carries wall
//!   time (nanoseconds since [`start`]) and, optionally, a **simulation
//!   clock** range ([`SpanGuard::sim_start`]/[`SpanGuard::sim_end`]) —
//!   archsim's virtual nanoseconds. [`span_complete`] records a sim-stamped
//!   span in one call; [`instant`] records point events (e.g. an online
//!   controller pinning a frequency).
//! - **Metrics**: monotonic [`counter_add`], last-value [`gauge_set`],
//!   log-2-bucketed [`histogram_record`].
//! - [`stop`] drains everything into a [`TraceData`], which the exporters in
//!   [`export`] render as Chrome-trace/Perfetto JSON ([`chrome_trace`]),
//!   a CSV timeline merged with power samples ([`csv_timeline`]), or
//!   Prometheus text ([`metrics_text`]). `TraceData` also reports the
//!   recorder's own cost ([`TraceData::overhead_summary`]).
//!
//! # Feature gate
//!
//! With the default `enabled` feature off, the whole recorder is replaced by
//! the no-op mirror in `noop.rs`: [`ENABLED`] is `false`, [`SpanGuard`] is
//! zero-sized, and every entry point is an empty `#[inline]` function, so
//! instrumented code costs nothing. Workspace crates re-export this gate as
//! their own default-on `telemetry` feature.
//!
//! # Example
//!
//! ```
//! telemetry::start();
//! telemetry::set_track("rank-0");
//! {
//!     let mut sp = telemetry::span_start("sph", "density");
//!     sp.field("particles", 1000u64);
//!     sp.sim_start(0);
//!     sp.sim_end(1_000_000);
//! }
//! telemetry::counter_add("steps", 1);
//! let data = telemetry::stop();
//! let json = telemetry::export::chrome_trace(&data);
//! assert!(json.contains("\"traceEvents\""));
//! ```

pub mod data;
pub mod export;

#[cfg(feature = "enabled")]
mod recorder;
#[cfg(feature = "enabled")]
pub use recorder::{
    active, counter_add, gauge_set, histogram_record, instant, set_track, span_complete,
    span_start, start, stop, SpanGuard, ENABLED,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{
    active, counter_add, gauge_set, histogram_record, instant, set_track, span_complete,
    span_start, start, stop, SpanGuard, ENABLED,
};

pub use data::{Event, Fields, HistoSnapshot, InstantRecord, SpanRecord, TraceData, Value};
pub use export::{chrome_trace, csv_timeline, metrics_text};

#[cfg(all(test, feature = "enabled"))]
mod enabled_tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Sessions are process-global; serialize the tests that open one.
    fn session_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_and_metrics_round_trip() {
        let _g = session_lock();
        start();
        assert!(active());
        set_track("main-track");
        {
            let mut sp = span_start("sph", "density");
            assert!(sp.is_active());
            sp.field("particles", 4096u64);
            sp.sim_start(10);
            sp.sim_end(20);
        }
        span_complete("comm", "allgather", 5, 9, vec![("bytes", 128u64.into())]);
        instant("online", "decide", Some(42), vec![("mhz", 1410u32.into())]);
        counter_add("gpu.freq_transitions", 3);
        counter_add("gpu.freq_transitions", 2);
        gauge_set("power_w", 250.5);
        histogram_record("step_energy_j", 3.0);
        histogram_record("step_energy_j", 5.0);
        let data = stop();
        assert!(!active());
        assert_eq!(data.span_count(), 2);
        assert_eq!(data.instant_count(), 1);
        assert_eq!(data.tracks.len(), 1);
        assert_eq!(data.tracks[0].name, "main-track");
        assert_eq!(data.counters, vec![("gpu.freq_transitions".to_string(), 5)]);
        assert_eq!(data.gauges, vec![("power_w".to_string(), 250.5)]);
        assert_eq!(data.histograms.len(), 1);
        assert_eq!(data.histograms[0].count, 2);
        assert!((data.histograms[0].sum - 8.0).abs() < 1e-12);
        let sp = data.tracks[0]
            .events
            .iter()
            .find_map(|e| match e {
                Event::Span(s) if s.name == "density" => Some(s),
                _ => None,
            })
            .expect("density span recorded");
        assert_eq!(sp.cat, "sph");
        assert_eq!(sp.sim_start_ns, Some(10));
        assert_eq!(sp.sim_end_ns, Some(20));
        assert_eq!(sp.fields, vec![("particles", Value::U64(4096))]);
        assert!(sp.wall_end_ns >= sp.wall_start_ns);
    }

    #[test]
    fn inactive_outside_session_records_nothing() {
        let _g = session_lock();
        assert!(!active());
        {
            let mut sp = span_start("sph", "ignored");
            assert!(!sp.is_active());
            sp.field("k", 1u64);
        }
        instant("x", "y", None, Vec::new());
        counter_add("c", 1);
        gauge_set("g", 1.0);
        histogram_record("h", 1.0);
        start();
        let data = stop();
        assert_eq!(data.span_count(), 0);
        assert_eq!(data.instant_count(), 0);
        assert!(data.counters.is_empty());
        assert!(data.gauges.is_empty());
        assert!(data.histograms.is_empty());
    }

    #[test]
    fn sessions_are_independent_and_threads_get_tracks() {
        let _g = session_lock();
        start();
        counter_add("first_only", 1);
        {
            let _sp = span_start("a", "b");
        }
        let first = stop();
        assert_eq!(first.span_count(), 1);

        start();
        let handle = std::thread::spawn(|| {
            set_track("worker-1");
            let _sp = span_start("par", "task");
        });
        handle.join().unwrap();
        {
            let _sp = span_start("par", "root");
        }
        let second = stop();
        assert_eq!(second.span_count(), 2);
        assert!(
            second.counters.is_empty(),
            "first session's counters leaked"
        );
        assert!(second.tracks.iter().any(|t| t.name == "worker-1"));
        assert!(second.session_ns > 0);
        // Recording took *some* time, and far less than the session.
        assert!(second.overhead_ns <= second.session_ns);
        assert!(second.overhead_fraction() <= 1.0);
    }

    #[test]
    fn chrome_trace_has_matched_pairs_and_metadata() {
        let _g = session_lock();
        start();
        set_track("rank-0");
        span_complete("gpu", "kernel", 0, 1_000, vec![("freq", 1410u32.into())]);
        {
            let mut sp = span_start("tuner", "sweep");
            sp.field("evals", 7usize);
        }
        instant("online", "decide", None, vec![("mhz", 990u32.into())]);
        let data = stop();
        let json = chrome_trace(&data);
        assert!(json.contains("\"traceEvents\""));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert!(json.contains("\"name\":\"sim-time\""));
        assert!(json.contains("\"name\":\"wall-clock\""));
        assert!(json.contains("\"name\":\"rank-0\""));
        // Sim-stamped span lands on the sim pid, wall-only span on the wall pid.
        assert!(json.contains("\"name\":\"kernel\",\"cat\":\"gpu\",\"ph\":\"B\",\"pid\":1"));
        assert!(json.contains("\"name\":\"sweep\",\"cat\":\"tuner\",\"ph\":\"B\",\"pid\":2"));
    }

    #[test]
    fn csv_timeline_merges_power_rows_in_time_order() {
        let _g = session_lock();
        start();
        span_complete("sph", "density", 1_000_000_000, 3_000_000_000, Vec::new());
        let data = stop();
        let csv = csv_timeline(&data, &[(0.5, 100.0), (2.0, 180.0)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,kind,track,cat,name,value");
        let kinds: Vec<&str> = lines[1..]
            .iter()
            .map(|l| l.split(',').nth(1).unwrap())
            .collect();
        assert_eq!(kinds, vec!["power", "span_begin", "power", "span_end"]);
    }

    #[test]
    fn metrics_text_is_prometheus_shaped() {
        let _g = session_lock();
        start();
        counter_add("comm.bytes", 640);
        gauge_set("edp.best", 12.5);
        histogram_record("func energy", 3.5); // space must be sanitized
        histogram_record("func energy", 0.0); // underflow bucket
        let data = stop();
        let text = metrics_text(&data);
        assert!(text.contains("# TYPE freqscale_comm_bytes counter"));
        assert!(text.contains("freqscale_comm_bytes 640"));
        assert!(text.contains("freqscale_edp_best 12.5"));
        assert!(text.contains("freqscale_func_energy_count 2"));
        assert!(text.contains("freqscale_func_energy_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("freqscale_telemetry_overhead_ns"));
    }

    #[test]
    fn histo_bucket_edges() {
        use data::{histo_bucket, HISTO_EXP_CLAMP};
        assert_eq!(histo_bucket(0.0), -HISTO_EXP_CLAMP);
        assert_eq!(histo_bucket(-5.0), -HISTO_EXP_CLAMP);
        assert_eq!(histo_bucket(f64::NAN), -HISTO_EXP_CLAMP);
        assert_eq!(histo_bucket(1.0), 0);
        assert_eq!(histo_bucket(1.5), 1);
        assert_eq!(histo_bucket(2.0), 1);
        assert_eq!(histo_bucket(2.1), 2);
        assert_eq!(histo_bucket(f64::INFINITY), -HISTO_EXP_CLAMP);
        assert_eq!(histo_bucket(1e300), HISTO_EXP_CLAMP);
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod disabled_tests {
    use super::*;

    /// The zero-cost pin the tentpole asks for: with `enabled` off the guard
    /// is a ZST and the API reports itself compiled out.
    #[test]
    fn disabled_build_is_zero_cost() {
        assert!(!ENABLED);
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert!(!active());
        start();
        assert!(!active(), "start() must not flip anything when disabled");
        {
            let mut sp = span_start("sph", "density");
            assert!(!sp.is_active());
            sp.field("particles", 4096u64);
            sp.sim_start(0);
            sp.sim_end(1);
        }
        span_complete("comm", "allgather", 0, 1, Vec::new());
        instant("online", "decide", None, Vec::new());
        counter_add("c", 1);
        gauge_set("g", 1.0);
        histogram_record("h", 1.0);
        let data = stop();
        assert_eq!(data.span_count(), 0);
        assert!(data.tracks.is_empty());
        assert!(data.counters.is_empty());
        assert_eq!(data.session_ns, 0);
    }

    #[test]
    fn exporters_accept_empty_data_when_disabled() {
        let data = stop();
        let json = chrome_trace(&data);
        assert!(json.contains("\"traceEvents\""));
        let csv = csv_timeline(&data, &[]);
        assert!(csv.starts_with("t_s,kind,track,cat,name,value"));
        let text = metrics_text(&data);
        assert!(text.contains("freqscale_telemetry_overhead_ns 0"));
    }
}
