//! No-op mirror of the recorder API, compiled when the `enabled` feature is
//! off. Every function is an empty `#[inline]` body and [`SpanGuard`] is a
//! zero-sized type, so fully-instrumented callers compile to nothing — the
//! zero-cost claim pinned by the disabled-build tests in `lib.rs`.

use crate::data::{Fields, TraceData, Value};

/// `false` — the recorder is compiled out.
pub const ENABLED: bool = false;

/// Always `false`: no session can ever be open.
#[inline]
pub fn active() -> bool {
    false
}

/// Does nothing.
#[inline]
pub fn start() {}

/// Always returns an empty [`TraceData`].
#[inline]
pub fn stop() -> TraceData {
    TraceData::default()
}

/// Does nothing.
#[inline]
pub fn set_track(_name: impl Into<String>) {}

/// Zero-sized stand-in for the live RAII span guard.
pub struct SpanGuard;

impl SpanGuard {
    /// Always `false`.
    #[inline]
    pub fn is_active(&self) -> bool {
        false
    }

    /// Does nothing.
    #[inline]
    pub fn field(&mut self, _key: &'static str, _value: impl Into<Value>) {}

    /// Does nothing.
    #[inline]
    pub fn sim_start(&mut self, _ns: u64) {}

    /// Does nothing.
    #[inline]
    pub fn sim_end(&mut self, _ns: u64) {}
}

/// Returns the zero-sized inert guard.
#[inline]
pub fn span_start(_cat: &'static str, _name: &'static str) -> SpanGuard {
    SpanGuard
}

/// Does nothing.
#[inline]
pub fn span_complete(
    _cat: &'static str,
    _name: &'static str,
    _sim_start_ns: u64,
    _sim_end_ns: u64,
    _fields: Fields,
) {
}

/// Does nothing.
#[inline]
pub fn instant(_cat: &'static str, _name: &'static str, _sim_ns: Option<u64>, _fields: Fields) {}

/// Does nothing.
#[inline]
pub fn counter_add(_name: &str, _delta: u64) {}

/// Does nothing.
#[inline]
pub fn gauge_set(_name: &str, _value: f64) {}

/// Does nothing.
#[inline]
pub fn histogram_record(_name: &str, _value: f64) {}
