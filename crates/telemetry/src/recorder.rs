//! Live recorder, compiled only with the `enabled` feature.
//!
//! One global registry holds per-thread event buffers (registered lazily via
//! a thread-local on first record), counters/gauges/histograms, and a wall
//! anchor. Recording only happens between [`start`] and [`stop`]; outside a
//! session every entry point is a single relaxed atomic load, so leaving the
//! instrumentation in library code does not grow memory across e.g. a test
//! suite that never starts a session.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::data::{
    histo_bucket, Event, Fields, HistoSnapshot, InstantRecord, SpanRecord, TraceData, TrackData,
    Value,
};

/// Per-thread cap on buffered events; further records increment `dropped`.
const EVENT_CAP: usize = 1 << 20;

struct ThreadBuf {
    track: Mutex<String>,
    events: Mutex<Vec<Event>>,
    /// Session epoch this buffer is registered under.
    epoch: AtomicU64,
    dropped: AtomicU64,
}

struct Global {
    active: AtomicBool,
    epoch: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histos: Mutex<BTreeMap<String, HistoSnapshot>>,
    /// Nanoseconds the recorder itself spent inside record paths.
    overhead_ns: AtomicU64,
    session_start_ns: AtomicU64,
}

static GLOBAL: Global = Global {
    active: AtomicBool::new(false),
    epoch: AtomicU64::new(0),
    threads: Mutex::new(Vec::new()),
    counters: Mutex::new(BTreeMap::new()),
    gauges: Mutex::new(BTreeMap::new()),
    histos: Mutex::new(BTreeMap::new()),
    overhead_ns: AtomicU64::new(0),
    session_start_ns: AtomicU64::new(0),
};

fn anchor() -> &'static Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide wall anchor, minus the session start.
fn wall_now_ns() -> u64 {
    let abs = anchor().elapsed().as_nanos() as u64;
    abs.saturating_sub(GLOBAL.session_start_ns.load(Ordering::Relaxed))
}

thread_local! {
    static LOCAL: std::cell::RefCell<Option<Arc<ThreadBuf>>> =
        const { std::cell::RefCell::new(None) };
}

fn with_buf<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let epoch = GLOBAL.epoch.load(Ordering::Acquire);
        let stale = match slot.as_ref() {
            Some(buf) => buf.epoch.load(Ordering::Relaxed) != epoch,
            None => true,
        };
        if stale {
            let buf = Arc::new(ThreadBuf {
                track: Mutex::new(default_track_name()),
                events: Mutex::new(Vec::new()),
                epoch: AtomicU64::new(epoch),
                dropped: AtomicU64::new(0),
            });
            GLOBAL.threads.lock().unwrap().push(Arc::clone(&buf));
            *slot = Some(buf);
        }
        f(slot.as_ref().unwrap())
    })
}

fn default_track_name() -> String {
    std::thread::current().name().map_or_else(
        || format!("{:?}", std::thread::current().id()),
        String::from,
    )
}

fn push_event(ev: Event) {
    with_buf(|buf| {
        let mut events = buf.events.lock().unwrap();
        if events.len() >= EVENT_CAP {
            buf.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            events.push(ev);
        }
    });
}

/// `true` — the recorder is compiled in (the `enabled` feature is on).
pub const ENABLED: bool = true;

/// True while a recording session is open (between [`start`] and [`stop`]).
#[inline]
pub fn active() -> bool {
    GLOBAL.active.load(Ordering::Relaxed)
}

/// Open a recording session, discarding anything a previous session left
/// behind. Event timestamps are relative to this call.
pub fn start() {
    let mut threads = GLOBAL.threads.lock().unwrap();
    threads.clear();
    GLOBAL.epoch.fetch_add(1, Ordering::AcqRel);
    GLOBAL.counters.lock().unwrap().clear();
    GLOBAL.gauges.lock().unwrap().clear();
    GLOBAL.histos.lock().unwrap().clear();
    GLOBAL.overhead_ns.store(0, Ordering::Relaxed);
    GLOBAL
        .session_start_ns
        .store(anchor().elapsed().as_nanos() as u64, Ordering::Relaxed);
    drop(threads);
    GLOBAL.active.store(true, Ordering::Release);
}

/// Close the session and drain everything recorded since [`start`] into a
/// [`TraceData`]. Calling without an open session returns an empty snapshot.
pub fn stop() -> TraceData {
    let was_active = GLOBAL.active.swap(false, Ordering::AcqRel);
    let session_ns = if was_active { wall_now_ns() } else { 0 };
    let mut data = TraceData {
        session_ns,
        overhead_ns: GLOBAL.overhead_ns.swap(0, Ordering::Relaxed),
        ..TraceData::default()
    };
    // Bump the epoch so thread-local buffers re-register next session and
    // stop writing into the drained vectors.
    GLOBAL.epoch.fetch_add(1, Ordering::AcqRel);
    let threads = std::mem::take(&mut *GLOBAL.threads.lock().unwrap());
    for buf in threads {
        let name = buf.track.lock().unwrap().clone();
        let events = std::mem::take(&mut *buf.events.lock().unwrap());
        data.dropped += buf.dropped.load(Ordering::Relaxed);
        if !events.is_empty() {
            data.tracks.push(TrackData { name, events });
        }
    }
    data.counters = GLOBAL
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    data.gauges = GLOBAL
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    data.histograms = GLOBAL.histos.lock().unwrap().values().cloned().collect();
    data
}

/// Label the current thread's track (e.g. `rank-3`). No-op outside a session.
pub fn set_track(name: impl Into<String>) {
    if !active() {
        return;
    }
    let name = name.into();
    with_buf(|buf| *buf.track.lock().unwrap() = name);
}

/// RAII span: records a [`SpanRecord`] on drop. Obtained from [`span_start`].
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    cat: &'static str,
    name: &'static str,
    wall_start_ns: u64,
    sim_start_ns: Option<u64>,
    sim_end_ns: Option<u64>,
    fields: Fields,
}

impl SpanGuard {
    /// True when this guard will actually record (session open at creation).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a key/value field.
    #[inline]
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }

    /// Stamp the virtual-time start of the span (simulation nanoseconds).
    #[inline]
    pub fn sim_start(&mut self, ns: u64) {
        if let Some(inner) = &mut self.inner {
            inner.sim_start_ns = Some(ns);
        }
    }

    /// Stamp the virtual-time end of the span (simulation nanoseconds).
    #[inline]
    pub fn sim_end(&mut self, ns: u64) {
        if let Some(inner) = &mut self.inner {
            inner.sim_end_ns = Some(ns);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let t0 = anchor().elapsed();
        let wall_end_ns = wall_now_ns();
        push_event(Event::Span(SpanRecord {
            cat: inner.cat,
            name: inner.name,
            wall_start_ns: inner.wall_start_ns,
            wall_end_ns,
            sim_start_ns: inner.sim_start_ns,
            sim_end_ns: inner.sim_end_ns,
            fields: inner.fields,
        }));
        GLOBAL.overhead_ns.fetch_add(
            (anchor().elapsed() - t0).as_nanos() as u64,
            Ordering::Relaxed,
        );
    }
}

/// Open a span on the current thread's track. Returns an inert guard when no
/// session is open.
#[inline]
pub fn span_start(cat: &'static str, name: &'static str) -> SpanGuard {
    if !active() {
        return SpanGuard { inner: None };
    }
    SpanGuard {
        inner: Some(SpanInner {
            cat,
            name,
            wall_start_ns: wall_now_ns(),
            sim_start_ns: None,
            sim_end_ns: None,
            fields: Vec::new(),
        }),
    }
}

/// Record a complete span in one call (sim-time endpoints known up front).
pub fn span_complete(
    cat: &'static str,
    name: &'static str,
    sim_start_ns: u64,
    sim_end_ns: u64,
    fields: Fields,
) {
    if !active() {
        return;
    }
    let t0 = anchor().elapsed();
    let wall = wall_now_ns();
    push_event(Event::Span(SpanRecord {
        cat,
        name,
        wall_start_ns: wall,
        wall_end_ns: wall,
        sim_start_ns: Some(sim_start_ns),
        sim_end_ns: Some(sim_end_ns),
        fields,
    }));
    GLOBAL.overhead_ns.fetch_add(
        (anchor().elapsed() - t0).as_nanos() as u64,
        Ordering::Relaxed,
    );
}

/// Record a point event, optionally on the simulation clock.
pub fn instant(cat: &'static str, name: &'static str, sim_ns: Option<u64>, fields: Fields) {
    if !active() {
        return;
    }
    let t0 = anchor().elapsed();
    let wall_ns = wall_now_ns();
    push_event(Event::Instant(InstantRecord {
        cat,
        name,
        wall_ns,
        sim_ns,
        fields,
    }));
    GLOBAL.overhead_ns.fetch_add(
        (anchor().elapsed() - t0).as_nanos() as u64,
        Ordering::Relaxed,
    );
}

/// Add `delta` to the named monotonic counter.
pub fn counter_add(name: &str, delta: u64) {
    if !active() {
        return;
    }
    let mut counters = GLOBAL.counters.lock().unwrap();
    match counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            counters.insert(name.to_string(), delta);
        }
    }
}

/// Set the named gauge to its latest value.
pub fn gauge_set(name: &str, value: f64) {
    if !active() {
        return;
    }
    let mut gauges = GLOBAL.gauges.lock().unwrap();
    match gauges.get_mut(name) {
        Some(v) => *v = value,
        None => {
            gauges.insert(name.to_string(), value);
        }
    }
}

/// Record a sample into the named log-2-bucketed histogram.
pub fn histogram_record(name: &str, value: f64) {
    if !active() {
        return;
    }
    let mut histos = GLOBAL.histos.lock().unwrap();
    let h = histos
        .entry(name.to_string())
        .or_insert_with(|| HistoSnapshot {
            name: name.to_string(),
            ..HistoSnapshot::default()
        });
    *h.buckets.entry(histo_bucket(value)).or_insert(0) += 1;
    h.count += 1;
    if value.is_finite() {
        h.sum += value;
    }
}
