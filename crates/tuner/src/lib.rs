//! # tuner — a KernelTuner-style GPU auto-tuning harness
//!
//! Reproduces the slice of KernelTuner (van Werkhoven, FGCS 2019 — the
//! paper's ref. \[27\]) that §III-C uses: run one kernel repeatedly under a
//! dictionary of tunable parameters, measure time / energy / EDP per
//! configuration, and report the best. The paper's single tunable is the
//! *device-wide* GPU compute frequency, swept from 1005 to 1410 MHz.
//!
//! ```
//! use archsim::{GpuSpec, MegaHertz};
//! use tuner::{tune_kernel, Objective, TuneOptions, ParamSpace};
//!
//! // Sweep MomentumEnergy-like work over the paper's frequency range.
//! let mut params = ParamSpace::new();
//! params.add_frequency_range(MegaHertz(1005), MegaHertz(1410), 45);
//! let result = tune_kernel(
//!     "MomentumEnergy",
//!     |_p, n| archsim::KernelWorkload::new("MomentumEnergy", 4800.0 * n, 810.0 * n)
//!         .with_activity(0.95, 0.55),
//!     91.125e6,
//!     &params,
//!     &GpuSpec::a100_pcie_40gb(),
//!     TuneOptions { objective: Objective::Edp, ..Default::default() },
//! );
//! assert!(!result.configs.is_empty());
//! ```

pub mod measure;
pub mod space;
pub mod strategy;

use archsim::{GpuSpec, KernelWorkload, MegaHertz};

pub use measure::{measure_config, ConfigResult};
pub use space::{ParamSpace, ParamValues, FREQ_KEY, MEM_FREQ_KEY};
pub use strategy::Strategy;

/// What to optimize for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize time-to-solution.
    Time,
    /// Minimize energy-to-solution.
    Energy,
    /// Minimize energy-delay product (the paper's Fig. 2 choice).
    Edp,
}

impl Objective {
    /// The scalar this objective minimizes for a given measurement.
    pub fn score(&self, r: &ConfigResult) -> f64 {
        match self {
            Objective::Time => r.time_s,
            Objective::Energy => r.energy_j,
            Objective::Edp => r.edp,
        }
    }
}

/// Tuning options (`tune_kernel` keyword arguments in the Python original).
#[derive(Debug, Clone)]
pub struct TuneOptions {
    pub objective: Objective,
    /// Times each configuration is executed; results are averaged
    /// (KernelTuner's `iterations`, default 7).
    pub iterations: u32,
    /// Search strategy (brute force is KernelTuner's default).
    pub strategy: Strategy,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            objective: Objective::Edp,
            iterations: 7,
            strategy: Strategy::BruteForce,
        }
    }
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    pub kernel_name: String,
    /// All evaluated configurations, in evaluation order.
    pub configs: Vec<ConfigResult>,
    /// Index of the best configuration under the chosen objective.
    pub best: usize,
}

impl TuneResult {
    pub fn best_config(&self) -> &ConfigResult {
        &self.configs[self.best]
    }

    /// The winning frequency, if the space included one.
    pub fn best_frequency(&self) -> Option<archsim::MegaHertz> {
        self.best_config().params.frequency()
    }
}

/// The `tune_kernel` entry point.
///
/// * `kernel_name` — reported name.
/// * `kernel_source` — builds the workload from a parameter assignment and
///   the problem size (the analogue of compiling the kernel with `params`
///   macros applied).
/// * `problem_size` — particles/elements; scales the workload (fixed at
///   `450^3` in §III-C).
/// * `params` — the tunable-parameter dictionary.
pub fn tune_kernel<F>(
    kernel_name: &str,
    kernel_source: F,
    problem_size: f64,
    params: &ParamSpace,
    gpu: &GpuSpec,
    opts: TuneOptions,
) -> TuneResult
where
    F: Fn(&ParamValues, f64) -> KernelWorkload + Sync,
{
    // Each evaluation benchmarks a fresh simulated device, so configurations
    // are independent and the brute-force sweep runs configurations
    // concurrently (collected in enumeration order — identical output).
    let evaluate = |assignment: &ParamValues| -> ConfigResult {
        let workload = kernel_source(assignment, problem_size);
        measure_config(gpu, &workload, assignment, opts.iterations)
    };
    let configs = opts
        .strategy
        .search_parallel(params, &opts.objective, evaluate);
    assert!(!configs.is_empty(), "empty parameter space");
    let best = configs
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            opts.objective
                .score(a)
                .partial_cmp(&opts.objective.score(b))
                .expect("finite scores")
        })
        .map(|(i, _)| i)
        .expect("non-empty configs");
    TuneResult {
        kernel_name: kernel_name.to_string(),
        configs,
        best,
    }
}

/// Build the full (core, memory) product space for `gpu`: core clocks in
/// `[lo, max]` on the ladder, crossed with every memory P-state.
pub fn core_mem_space(gpu: &GpuSpec, lo: MegaHertz) -> ParamSpace {
    let mut params = ParamSpace::new();
    params.add_frequency_range(lo, gpu.clock_table.max(), gpu.clock_table.step());
    if gpu.mem_clock_table.len() > 1 {
        params.add_memory_frequencies(&gpu.mem_clock_table);
    }
    params
}

/// Exhaustively sweep the (core, memory) clock product — the ground truth
/// the predictive sweep is judged against.
pub fn exhaustive_core_mem_sweep<F>(
    kernel_name: &str,
    kernel_source: F,
    problem_size: f64,
    gpu: &GpuSpec,
    lo: MegaHertz,
    opts: TuneOptions,
) -> TuneResult
where
    F: Fn(&ParamValues, f64) -> KernelWorkload + Sync,
{
    let params = core_mem_space(gpu, lo);
    tune_kernel(kernel_name, kernel_source, problem_size, &params, gpu, opts)
}

/// Outcome of a predictive (model-fitting) sweep.
#[derive(Debug, Clone)]
pub struct PredictiveSweep {
    pub kernel_name: String,
    /// The fitted analytic model.
    pub model: model::KernelModel,
    /// The model's predicted optimum over the (core, mem) product.
    pub predicted: model::Predicted,
    /// Measured cost at the predicted point (the verification launch).
    pub verified: ConfigResult,
    /// Configurations actually measured: the probes plus the verification.
    /// Compare against the product-space size for the launch savings.
    pub measurements: usize,
}

/// Sweep the (core, memory) product by measuring only `probe_rungs` core
/// clocks (plus one low-memory probe when the device has multiple P-states),
/// fitting the analytic roofline/power model, and jumping to its predicted
/// EDP optimum — which is then measured once to verify.
///
/// Errors propagate from the fit (too few probes, degenerate samples); the
/// caller decides whether to fall back to [`exhaustive_core_mem_sweep`].
pub fn predictive_core_mem_sweep<F>(
    kernel_name: &str,
    kernel_source: F,
    problem_size: f64,
    gpu: &GpuSpec,
    lo: MegaHertz,
    probe_rungs: usize,
    iterations: u32,
) -> Result<PredictiveSweep, model::FitError>
where
    F: Fn(&ParamValues, f64) -> KernelWorkload + Sync,
{
    let ladder: Vec<MegaHertz> = gpu
        .clock_table
        .clocks_in_range(lo, gpu.clock_table.max())
        .into_iter()
        .rev()
        .collect(); // ascending
    assert!(!ladder.is_empty(), "empty core ladder");
    let k = probe_rungs.clamp(2, ladder.len());
    let mem_default = gpu.mem_clock;
    // Evenly spaced core probes at the default P-state, top and bottom
    // included, then one probe at the lowest P-state to open the memory axis.
    let mut points: Vec<(MegaHertz, MegaHertz)> = (0..k)
        .map(|j| {
            let idx = (ladder.len() - 1) * (k - 1 - j) / (k - 1);
            (ladder[idx], mem_default)
        })
        .collect();
    points.dedup();
    if gpu.mem_clock_table.len() > 1 {
        let lowest = *gpu.mem_clock_table.last().expect("non-empty table");
        points.push((*ladder.last().expect("non-empty"), lowest));
    }
    let measure_at = |core: MegaHertz, mem: MegaHertz| -> ConfigResult {
        let mut p = ParamSpace::new();
        p.add_frequencies(&[core]);
        if gpu.mem_clock_table.len() > 1 {
            p.add_memory_frequencies(&[mem]);
        }
        let assignment = p.enumerate().remove(0);
        let workload = kernel_source(&assignment, problem_size);
        measure_config(gpu, &workload, &assignment, iterations)
    };
    let samples: Vec<model::Sample> = points
        .iter()
        .map(|&(core, mem)| {
            let r = measure_at(core, mem);
            model::Sample {
                f_core_mhz: f64::from(core.0),
                f_mem_mhz: f64::from(mem.0),
                time_s: r.time_s,
                energy_j: r.energy_j,
            }
        })
        .collect();
    let voltage = model::VoltageParams {
        v_min: gpu.voltage.v_min.0,
        v_max: gpu.voltage.v_max.0,
        f_min_mhz: f64::from(gpu.voltage.f_min.0),
        f_max_mhz: f64::from(gpu.voltage.f_max.0),
    };
    let fitted = model::KernelModel::fit(
        &samples,
        f64::from(ladder.last().expect("non-empty").0),
        f64::from(mem_default.0),
        voltage,
    )?;
    let core_mhz: Vec<u32> = ladder.iter().map(|f| f.0).collect();
    let mem_mhz: Vec<u32> = gpu.mem_clock_table.iter().map(|f| f.0).collect();
    let predicted = fitted
        .predict_optimum(&core_mhz, &mem_mhz)
        .expect("non-empty ladders");
    let verified = measure_at(
        MegaHertz(predicted.f_core_mhz),
        MegaHertz(predicted.f_mem_mhz),
    );
    Ok(PredictiveSweep {
        kernel_name: kernel_name.to_string(),
        model: fitted,
        predicted,
        verified,
        measurements: points.len() + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::MegaHertz;

    fn compute_bound(_p: &ParamValues, n: f64) -> KernelWorkload {
        KernelWorkload::new("MomentumEnergy", 4800.0 * n, 810.0 * n).with_activity(0.95, 0.55)
    }

    fn memory_bound(_p: &ParamValues, n: f64) -> KernelWorkload {
        KernelWorkload::new("XMass", 330.0 * n, 500.0 * n).with_activity(0.30, 0.85)
    }

    fn paper_space() -> ParamSpace {
        let mut p = ParamSpace::new();
        p.add_frequency_range(MegaHertz(1005), MegaHertz(1410), 15);
        p
    }

    fn gpu() -> GpuSpec {
        GpuSpec::a100_pcie_40gb()
    }

    #[test]
    fn brute_force_evaluates_entire_space() {
        let r = tune_kernel(
            "k",
            compute_bound,
            1e6,
            &paper_space(),
            &gpu(),
            TuneOptions::default(),
        );
        assert_eq!(r.configs.len(), 28, "1005..=1410 step 15");
    }

    #[test]
    fn time_objective_picks_max_frequency() {
        let r = tune_kernel(
            "k",
            compute_bound,
            1e6,
            &paper_space(),
            &gpu(),
            TuneOptions {
                objective: Objective::Time,
                ..Default::default()
            },
        );
        assert_eq!(r.best_frequency(), Some(MegaHertz(1410)));
    }

    #[test]
    fn memory_bound_kernel_prefers_lower_edp_frequency_than_compute_bound() {
        // The Fig. 2 relationship: XMass-like kernels tune to lower clocks
        // than MomentumEnergy-like kernels.
        let opts = TuneOptions::default();
        let rc = tune_kernel(
            "me",
            compute_bound,
            1e6,
            &paper_space(),
            &gpu(),
            opts.clone(),
        );
        let rm = tune_kernel("xm", memory_bound, 1e6, &paper_space(), &gpu(), opts);
        let fc = rc.best_frequency().unwrap();
        let fm = rm.best_frequency().unwrap();
        assert!(
            fm < fc,
            "memory-bound best {fm} should be below compute-bound best {fc}"
        );
        assert_eq!(
            fm,
            MegaHertz(1005),
            "bandwidth-bound kernels tune to the sweep floor"
        );
    }

    #[test]
    fn energy_objective_never_picks_higher_freq_than_edp() {
        for factory in [
            compute_bound as fn(&ParamValues, f64) -> KernelWorkload,
            memory_bound,
        ] {
            let e = tune_kernel(
                "k",
                factory,
                1e6,
                &paper_space(),
                &gpu(),
                TuneOptions {
                    objective: Objective::Energy,
                    ..Default::default()
                },
            );
            let d = tune_kernel(
                "k",
                factory,
                1e6,
                &paper_space(),
                &gpu(),
                TuneOptions {
                    objective: Objective::Edp,
                    ..Default::default()
                },
            );
            assert!(e.best_frequency().unwrap() <= d.best_frequency().unwrap());
        }
    }

    #[test]
    fn random_strategy_subset_of_space_and_reproducible() {
        let opts = TuneOptions {
            strategy: Strategy::Random {
                samples: 5,
                seed: 42,
            },
            ..Default::default()
        };
        let r1 = tune_kernel(
            "k",
            compute_bound,
            1e6,
            &paper_space(),
            &gpu(),
            opts.clone(),
        );
        let r2 = tune_kernel("k", compute_bound, 1e6, &paper_space(), &gpu(), opts);
        assert_eq!(r1.configs.len(), 5);
        let f1: Vec<_> = r1.configs.iter().map(|c| c.params.frequency()).collect();
        let f2: Vec<_> = r2.configs.iter().map(|c| c.params.frequency()).collect();
        assert_eq!(f1, f2, "seeded random search must be deterministic");
    }

    #[test]
    fn hill_climb_matches_brute_force_on_unimodal_curve() {
        let brute = tune_kernel(
            "k",
            memory_bound,
            1e6,
            &paper_space(),
            &gpu(),
            TuneOptions::default(),
        );
        let hill = tune_kernel(
            "k",
            memory_bound,
            1e6,
            &paper_space(),
            &gpu(),
            TuneOptions {
                strategy: Strategy::HillClimb {
                    restarts: 3,
                    seed: 7,
                },
                ..Default::default()
            },
        );
        assert_eq!(hill.best_frequency(), brute.best_frequency());
        assert!(hill.configs.len() <= brute.configs.len());
    }

    #[test]
    fn two_axis_tuning_finds_joint_optimum() {
        // A second tunable besides frequency, KernelTuner-style: block size
        // affects launch structure (larger blocks -> fewer launches but a
        // lower activity factor for this synthetic kernel).
        let mut params = ParamSpace::new();
        params.add("block_size", vec![64.0, 128.0, 256.0]);
        params.add_frequencies(&[MegaHertz(1410), MegaHertz(1200), MegaHertz(1005)]);
        let factory = |p: &ParamValues, n: f64| {
            let bs = p.get("block_size").expect("axis present");
            let launches = (1024.0 * 64.0 / bs) as u32;
            KernelWorkload::new("k", 300.0 * n, 400.0 * n)
                .with_launches(launches)
                .with_activity(0.5, 0.8)
        };
        let r = tune_kernel("k", factory, 1e6, &params, &gpu(), TuneOptions::default());
        assert_eq!(r.configs.len(), 9, "full cartesian product");
        let best = r.best_config();
        // Fewer launches always win here (launch overhead is pure cost), and
        // the bandwidth-bound kernel prefers the sweep floor.
        assert_eq!(best.params.get("block_size"), Some(256.0));
        assert_eq!(r.best_frequency(), Some(MegaHertz(1005)));
    }

    #[test]
    fn exhaustive_core_mem_sweep_covers_the_product() {
        let gpu = GpuSpec::a100_sxm4_80gb();
        let r = exhaustive_core_mem_sweep(
            "k",
            compute_bound,
            1e6,
            &gpu,
            MegaHertz(1005),
            TuneOptions {
                iterations: 2,
                ..Default::default()
            },
        );
        // 28 core rungs × 3 memory P-states.
        assert_eq!(r.configs.len(), 28 * 3);
        let best = r.best_config();
        assert!(best.params.frequency().is_some());
        assert!(best.params.memory_frequency().is_some());
    }

    #[test]
    fn memory_bound_kernel_keeps_top_pstate_in_joint_sweep() {
        let gpu = GpuSpec::a100_sxm4_80gb();
        let r = exhaustive_core_mem_sweep(
            "xm",
            memory_bound,
            1e6,
            &gpu,
            MegaHertz(1005),
            TuneOptions {
                iterations: 2,
                ..Default::default()
            },
        );
        assert_eq!(
            r.best_config().params.memory_frequency(),
            Some(MegaHertz(1593)),
            "downclocking memory starves a bandwidth-bound kernel"
        );
    }

    #[test]
    fn predictive_sweep_lands_within_one_bin_of_exhaustive() {
        let gpu = GpuSpec::a100_sxm4_80gb();
        // Single-regime workloads at paper scale: the roofline stays on one
        // side of the kink across the window, so the analytic model applies.
        // (Kernels that cross the kink mid-window are what the online
        // verification step and search fallback exist for.)
        let strongly_compute = |_p: &ParamValues, n: f64| {
            KernelWorkload::new("grav", 50_000.0 * n, 100.0 * n).with_activity(0.95, 0.9)
        };
        for factory in [
            &strongly_compute as &(dyn Fn(&ParamValues, f64) -> KernelWorkload + Sync),
            &memory_bound,
        ] {
            let truth = exhaustive_core_mem_sweep(
                "k",
                factory,
                91.125e6,
                &gpu,
                MegaHertz(1005),
                TuneOptions {
                    iterations: 2,
                    ..Default::default()
                },
            );
            let pred =
                predictive_core_mem_sweep("k", factory, 91.125e6, &gpu, MegaHertz(1005), 4, 2)
                    .unwrap();
            let best = truth.best_config();
            let step = gpu.clock_table.step();
            let d = best
                .params
                .frequency()
                .unwrap()
                .0
                .abs_diff(pred.predicted.f_core_mhz);
            assert!(
                d <= step,
                "predicted {} vs exhaustive {} (> one bin)",
                pred.predicted.f_core_mhz,
                best.params.frequency().unwrap()
            );
            assert_eq!(
                Some(MegaHertz(pred.predicted.f_mem_mhz)),
                best.params.memory_frequency(),
                "memory P-state choice must match"
            );
            // ≥5× fewer measured configurations than the brute-force product.
            assert!(pred.measurements * 5 <= truth.configs.len());
        }
    }

    #[test]
    fn edp_equals_time_times_energy() {
        let r = tune_kernel(
            "k",
            compute_bound,
            1e6,
            &paper_space(),
            &gpu(),
            TuneOptions::default(),
        );
        for c in &r.configs {
            assert!((c.edp - c.time_s * c.energy_j).abs() < 1e-9 * c.edp.max(1.0));
        }
    }
}
