//! # tuner — a KernelTuner-style GPU auto-tuning harness
//!
//! Reproduces the slice of KernelTuner (van Werkhoven, FGCS 2019 — the
//! paper's ref. \[27\]) that §III-C uses: run one kernel repeatedly under a
//! dictionary of tunable parameters, measure time / energy / EDP per
//! configuration, and report the best. The paper's single tunable is the
//! *device-wide* GPU compute frequency, swept from 1005 to 1410 MHz.
//!
//! ```
//! use archsim::{GpuSpec, MegaHertz};
//! use tuner::{tune_kernel, Objective, TuneOptions, ParamSpace};
//!
//! // Sweep MomentumEnergy-like work over the paper's frequency range.
//! let mut params = ParamSpace::new();
//! params.add_frequency_range(MegaHertz(1005), MegaHertz(1410), 45);
//! let result = tune_kernel(
//!     "MomentumEnergy",
//!     |_p, n| archsim::KernelWorkload::new("MomentumEnergy", 4800.0 * n, 810.0 * n)
//!         .with_activity(0.95, 0.55),
//!     91.125e6,
//!     &params,
//!     &GpuSpec::a100_pcie_40gb(),
//!     TuneOptions { objective: Objective::Edp, ..Default::default() },
//! );
//! assert!(!result.configs.is_empty());
//! ```

pub mod measure;
pub mod space;
pub mod strategy;

use archsim::{GpuSpec, KernelWorkload};

pub use measure::{measure_config, ConfigResult};
pub use space::{ParamSpace, ParamValues, FREQ_KEY};
pub use strategy::Strategy;

/// What to optimize for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize time-to-solution.
    Time,
    /// Minimize energy-to-solution.
    Energy,
    /// Minimize energy-delay product (the paper's Fig. 2 choice).
    Edp,
}

impl Objective {
    /// The scalar this objective minimizes for a given measurement.
    pub fn score(&self, r: &ConfigResult) -> f64 {
        match self {
            Objective::Time => r.time_s,
            Objective::Energy => r.energy_j,
            Objective::Edp => r.edp,
        }
    }
}

/// Tuning options (`tune_kernel` keyword arguments in the Python original).
#[derive(Debug, Clone)]
pub struct TuneOptions {
    pub objective: Objective,
    /// Times each configuration is executed; results are averaged
    /// (KernelTuner's `iterations`, default 7).
    pub iterations: u32,
    /// Search strategy (brute force is KernelTuner's default).
    pub strategy: Strategy,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            objective: Objective::Edp,
            iterations: 7,
            strategy: Strategy::BruteForce,
        }
    }
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    pub kernel_name: String,
    /// All evaluated configurations, in evaluation order.
    pub configs: Vec<ConfigResult>,
    /// Index of the best configuration under the chosen objective.
    pub best: usize,
}

impl TuneResult {
    pub fn best_config(&self) -> &ConfigResult {
        &self.configs[self.best]
    }

    /// The winning frequency, if the space included one.
    pub fn best_frequency(&self) -> Option<archsim::MegaHertz> {
        self.best_config().params.frequency()
    }
}

/// The `tune_kernel` entry point.
///
/// * `kernel_name` — reported name.
/// * `kernel_source` — builds the workload from a parameter assignment and
///   the problem size (the analogue of compiling the kernel with `params`
///   macros applied).
/// * `problem_size` — particles/elements; scales the workload (fixed at
///   `450^3` in §III-C).
/// * `params` — the tunable-parameter dictionary.
pub fn tune_kernel<F>(
    kernel_name: &str,
    kernel_source: F,
    problem_size: f64,
    params: &ParamSpace,
    gpu: &GpuSpec,
    opts: TuneOptions,
) -> TuneResult
where
    F: Fn(&ParamValues, f64) -> KernelWorkload + Sync,
{
    // Each evaluation benchmarks a fresh simulated device, so configurations
    // are independent and the brute-force sweep runs configurations
    // concurrently (collected in enumeration order — identical output).
    let evaluate = |assignment: &ParamValues| -> ConfigResult {
        let workload = kernel_source(assignment, problem_size);
        measure_config(gpu, &workload, assignment, opts.iterations)
    };
    let configs = opts
        .strategy
        .search_parallel(params, &opts.objective, evaluate);
    assert!(!configs.is_empty(), "empty parameter space");
    let best = configs
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            opts.objective
                .score(a)
                .partial_cmp(&opts.objective.score(b))
                .expect("finite scores")
        })
        .map(|(i, _)| i)
        .expect("non-empty configs");
    TuneResult {
        kernel_name: kernel_name.to_string(),
        configs,
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::MegaHertz;

    fn compute_bound(_p: &ParamValues, n: f64) -> KernelWorkload {
        KernelWorkload::new("MomentumEnergy", 4800.0 * n, 810.0 * n).with_activity(0.95, 0.55)
    }

    fn memory_bound(_p: &ParamValues, n: f64) -> KernelWorkload {
        KernelWorkload::new("XMass", 330.0 * n, 500.0 * n).with_activity(0.30, 0.85)
    }

    fn paper_space() -> ParamSpace {
        let mut p = ParamSpace::new();
        p.add_frequency_range(MegaHertz(1005), MegaHertz(1410), 15);
        p
    }

    fn gpu() -> GpuSpec {
        GpuSpec::a100_pcie_40gb()
    }

    #[test]
    fn brute_force_evaluates_entire_space() {
        let r = tune_kernel(
            "k",
            compute_bound,
            1e6,
            &paper_space(),
            &gpu(),
            TuneOptions::default(),
        );
        assert_eq!(r.configs.len(), 28, "1005..=1410 step 15");
    }

    #[test]
    fn time_objective_picks_max_frequency() {
        let r = tune_kernel(
            "k",
            compute_bound,
            1e6,
            &paper_space(),
            &gpu(),
            TuneOptions {
                objective: Objective::Time,
                ..Default::default()
            },
        );
        assert_eq!(r.best_frequency(), Some(MegaHertz(1410)));
    }

    #[test]
    fn memory_bound_kernel_prefers_lower_edp_frequency_than_compute_bound() {
        // The Fig. 2 relationship: XMass-like kernels tune to lower clocks
        // than MomentumEnergy-like kernels.
        let opts = TuneOptions::default();
        let rc = tune_kernel(
            "me",
            compute_bound,
            1e6,
            &paper_space(),
            &gpu(),
            opts.clone(),
        );
        let rm = tune_kernel("xm", memory_bound, 1e6, &paper_space(), &gpu(), opts);
        let fc = rc.best_frequency().unwrap();
        let fm = rm.best_frequency().unwrap();
        assert!(
            fm < fc,
            "memory-bound best {fm} should be below compute-bound best {fc}"
        );
        assert_eq!(
            fm,
            MegaHertz(1005),
            "bandwidth-bound kernels tune to the sweep floor"
        );
    }

    #[test]
    fn energy_objective_never_picks_higher_freq_than_edp() {
        for factory in [
            compute_bound as fn(&ParamValues, f64) -> KernelWorkload,
            memory_bound,
        ] {
            let e = tune_kernel(
                "k",
                factory,
                1e6,
                &paper_space(),
                &gpu(),
                TuneOptions {
                    objective: Objective::Energy,
                    ..Default::default()
                },
            );
            let d = tune_kernel(
                "k",
                factory,
                1e6,
                &paper_space(),
                &gpu(),
                TuneOptions {
                    objective: Objective::Edp,
                    ..Default::default()
                },
            );
            assert!(e.best_frequency().unwrap() <= d.best_frequency().unwrap());
        }
    }

    #[test]
    fn random_strategy_subset_of_space_and_reproducible() {
        let opts = TuneOptions {
            strategy: Strategy::Random {
                samples: 5,
                seed: 42,
            },
            ..Default::default()
        };
        let r1 = tune_kernel(
            "k",
            compute_bound,
            1e6,
            &paper_space(),
            &gpu(),
            opts.clone(),
        );
        let r2 = tune_kernel("k", compute_bound, 1e6, &paper_space(), &gpu(), opts);
        assert_eq!(r1.configs.len(), 5);
        let f1: Vec<_> = r1.configs.iter().map(|c| c.params.frequency()).collect();
        let f2: Vec<_> = r2.configs.iter().map(|c| c.params.frequency()).collect();
        assert_eq!(f1, f2, "seeded random search must be deterministic");
    }

    #[test]
    fn hill_climb_matches_brute_force_on_unimodal_curve() {
        let brute = tune_kernel(
            "k",
            memory_bound,
            1e6,
            &paper_space(),
            &gpu(),
            TuneOptions::default(),
        );
        let hill = tune_kernel(
            "k",
            memory_bound,
            1e6,
            &paper_space(),
            &gpu(),
            TuneOptions {
                strategy: Strategy::HillClimb {
                    restarts: 3,
                    seed: 7,
                },
                ..Default::default()
            },
        );
        assert_eq!(hill.best_frequency(), brute.best_frequency());
        assert!(hill.configs.len() <= brute.configs.len());
    }

    #[test]
    fn two_axis_tuning_finds_joint_optimum() {
        // A second tunable besides frequency, KernelTuner-style: block size
        // affects launch structure (larger blocks -> fewer launches but a
        // lower activity factor for this synthetic kernel).
        let mut params = ParamSpace::new();
        params.add("block_size", vec![64.0, 128.0, 256.0]);
        params.add_frequencies(&[MegaHertz(1410), MegaHertz(1200), MegaHertz(1005)]);
        let factory = |p: &ParamValues, n: f64| {
            let bs = p.get("block_size").expect("axis present");
            let launches = (1024.0 * 64.0 / bs) as u32;
            KernelWorkload::new("k", 300.0 * n, 400.0 * n)
                .with_launches(launches)
                .with_activity(0.5, 0.8)
        };
        let r = tune_kernel("k", factory, 1e6, &params, &gpu(), TuneOptions::default());
        assert_eq!(r.configs.len(), 9, "full cartesian product");
        let best = r.best_config();
        // Fewer launches always win here (launch overhead is pure cost), and
        // the bandwidth-bound kernel prefers the sweep floor.
        assert_eq!(best.params.get("block_size"), Some(256.0));
        assert_eq!(r.best_frequency(), Some(MegaHertz(1005)));
    }

    #[test]
    fn edp_equals_time_times_energy() {
        let r = tune_kernel(
            "k",
            compute_bound,
            1e6,
            &paper_space(),
            &gpu(),
            TuneOptions::default(),
        );
        for c in &r.configs {
            assert!((c.edp - c.time_s * c.energy_j).abs() < 1e-9 * c.edp.max(1.0));
        }
    }
}
