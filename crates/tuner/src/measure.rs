//! Benchmarking one configuration on a fresh simulated device.

use archsim::{EnergyDelay, GpuDevice, GpuSpec, KernelWorkload};
use serde::{Deserialize, Serialize};

use crate::space::ParamValues;

/// Measured cost of one parameter assignment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigResult {
    #[serde(skip)]
    pub params: ParamValues,
    /// Average kernel time per iteration, seconds.
    pub time_s: f64,
    /// Average device energy per iteration, joules.
    pub energy_j: f64,
    /// Energy-delay product per iteration, J·s.
    pub edp: f64,
}

/// Run `workload` `iterations` times on a fresh device pinned to the
/// assignment's frequency (if any) and report averaged time / energy / EDP.
/// A fresh device per configuration mirrors KernelTuner benchmarking each
/// compiled variant in isolation.
pub fn measure_config(
    gpu: &GpuSpec,
    workload: &KernelWorkload,
    params: &ParamValues,
    iterations: u32,
) -> ConfigResult {
    assert!(iterations > 0, "need at least one iteration");
    let mut device = GpuDevice::new(0, gpu.clone());
    if let Some(f) = params.frequency() {
        device
            .set_application_clocks(f)
            .unwrap_or_else(|e| panic!("config {params}: {e}"));
    } else {
        // No frequency axis: pin the device default (max clock), like a
        // centre-configured node.
        device
            .set_application_clocks(gpu.clock_table.max())
            .expect("max clock is supported");
    }
    if let Some(m) = params.memory_frequency() {
        device
            .set_memory_clock(m)
            .unwrap_or_else(|e| panic!("config {params}: {e}"));
    }
    let mut total_time = 0.0;
    let mut total_energy = 0.0;
    for _ in 0..iterations {
        let exec = device.run_region(workload);
        total_time += exec.duration().as_secs_f64();
        total_energy += exec.energy.0;
    }
    let time_s = total_time / f64::from(iterations);
    let energy_j = total_energy / f64::from(iterations);
    ConfigResult {
        params: params.clone(),
        time_s,
        energy_j,
        edp: EnergyDelay::of(energy_j, time_s).0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamSpace;
    use archsim::MegaHertz;

    fn assignment(f: u32) -> ParamValues {
        let mut p = ParamSpace::new();
        p.add_frequencies(&[MegaHertz(f)]);
        p.enumerate().remove(0)
    }

    #[test]
    fn measurement_is_deterministic() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let w = KernelWorkload::new("k", 1e12, 1e11);
        let a = measure_config(&gpu, &w, &assignment(1200), 3);
        let b = measure_config(&gpu, &w, &assignment(1200), 3);
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.energy_j, b.energy_j);
    }

    #[test]
    fn lower_frequency_is_slower() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let w = KernelWorkload::new("k", 1e13, 1e11).with_activity(0.9, 0.5);
        let hi = measure_config(&gpu, &w, &assignment(1410), 2);
        let lo = measure_config(&gpu, &w, &assignment(1005), 2);
        assert!(lo.time_s > hi.time_s);
        assert!(lo.energy_j < hi.energy_j);
    }

    #[test]
    #[should_panic(expected = "unsupported clock")]
    fn unsupported_frequency_panics_with_context() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let w = KernelWorkload::new("k", 1e9, 1e9);
        let _ = measure_config(&gpu, &w, &assignment(1001), 1);
    }

    #[test]
    fn no_frequency_axis_pins_max_clock() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let w = KernelWorkload::new("k", 1e12, 1e11);
        let none = measure_config(&gpu, &w, &ParamValues::default(), 2);
        let max = measure_config(&gpu, &w, &assignment(1410), 2);
        assert_eq!(none.time_s, max.time_s);
    }
}
