//! Tunable-parameter dictionaries (`params` in KernelTuner).

use std::collections::BTreeMap;

use archsim::MegaHertz;

/// The reserved key controlling the device compute clock.
pub const FREQ_KEY: &str = "gpu_freq";

/// The reserved key controlling the device memory clock (P-state).
pub const MEM_FREQ_KEY: &str = "gpu_mem_freq";

/// An ordered dictionary of tunable parameters, each with a list of values —
/// KernelTuner's `params` argument.
#[derive(Debug, Clone, Default)]
pub struct ParamSpace {
    axes: BTreeMap<String, Vec<f64>>,
}

impl ParamSpace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a generic tunable axis. Replaces an existing axis of that name.
    pub fn add(&mut self, key: &str, values: Vec<f64>) -> &mut Self {
        assert!(!values.is_empty(), "axis {key:?} needs at least one value");
        self.axes.insert(key.to_string(), values);
        self
    }

    /// Add the GPU-frequency axis as an inclusive range with a step, highest
    /// first (the order NVML enumerates supported clocks).
    pub fn add_frequency_range(&mut self, lo: MegaHertz, hi: MegaHertz, step: u32) -> &mut Self {
        assert!(step > 0 && hi >= lo);
        let mut values = Vec::new();
        let mut f = hi.0;
        loop {
            values.push(f as f64);
            if f < lo.0 + step {
                break;
            }
            f -= step;
        }
        self.add(FREQ_KEY, values)
    }

    /// Add an explicit list of frequencies.
    pub fn add_frequencies(&mut self, freqs: &[MegaHertz]) -> &mut Self {
        self.add(FREQ_KEY, freqs.iter().map(|f| f.0 as f64).collect())
    }

    /// Add the memory-clock axis from a device's P-state table (descending,
    /// as NVML enumerates supported memory clocks).
    pub fn add_memory_frequencies(&mut self, pstates: &[MegaHertz]) -> &mut Self {
        self.add(MEM_FREQ_KEY, pstates.iter().map(|f| f.0 as f64).collect())
    }

    /// Number of axes.
    pub fn axis_count(&self) -> usize {
        self.axes.len()
    }

    /// Total configurations in the cartesian product.
    pub fn size(&self) -> usize {
        self.axes
            .values()
            .map(Vec::len)
            .product::<usize>()
            .max(usize::from(self.axes.is_empty()))
    }

    /// Enumerate the full cartesian product, in lexicographic axis order.
    pub fn enumerate(&self) -> Vec<ParamValues> {
        let keys: Vec<&String> = self.axes.keys().collect();
        let mut out = vec![ParamValues::default()];
        for key in keys {
            let values = &self.axes[key];
            let mut next = Vec::with_capacity(out.len() * values.len());
            for base in &out {
                for &v in values {
                    let mut a = base.clone();
                    a.values.insert(key.clone(), v);
                    next.push(a);
                }
            }
            out = next;
        }
        out
    }
}

/// One concrete assignment of every tunable parameter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamValues {
    values: BTreeMap<String, f64>,
}

impl ParamValues {
    /// Look up a parameter.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// The GPU frequency, if this space tunes one.
    pub fn frequency(&self) -> Option<MegaHertz> {
        self.get(FREQ_KEY).map(|f| MegaHertz(f.round() as u32))
    }

    /// The memory clock (P-state), if this space tunes one.
    pub fn memory_frequency(&self) -> Option<MegaHertz> {
        self.get(MEM_FREQ_KEY).map(|f| MegaHertz(f.round() as u32))
    }

    /// All parameters, ordered by key.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl std::fmt::Display for ParamValues {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.iter().map(|(k, v)| format!("{k}={v}")).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_range_enumerates_descending() {
        let mut p = ParamSpace::new();
        p.add_frequency_range(MegaHertz(1005), MegaHertz(1410), 45);
        let all = p.enumerate();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].frequency(), Some(MegaHertz(1410)));
        assert_eq!(all[9].frequency(), Some(MegaHertz(1005)));
    }

    #[test]
    fn cartesian_product_of_two_axes() {
        let mut p = ParamSpace::new();
        p.add("block_size", vec![128.0, 256.0]);
        p.add_frequencies(&[MegaHertz(1410), MegaHertz(1005)]);
        assert_eq!(p.size(), 4);
        let all = p.enumerate();
        assert_eq!(all.len(), 4);
        // Every combination appears exactly once.
        for bs in [128.0, 256.0] {
            for f in [1410.0, 1005.0] {
                assert_eq!(
                    all.iter()
                        .filter(|a| a.get("block_size") == Some(bs) && a.get(FREQ_KEY) == Some(f))
                        .count(),
                    1
                );
            }
        }
    }

    #[test]
    fn empty_space_has_one_empty_assignment() {
        let p = ParamSpace::new();
        let all = p.enumerate();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].frequency(), None);
    }

    #[test]
    fn display_formats_assignment() {
        let mut p = ParamSpace::new();
        p.add_frequencies(&[MegaHertz(1200)]);
        let a = &p.enumerate()[0];
        assert_eq!(a.to_string(), "{gpu_freq=1200}");
    }
}
