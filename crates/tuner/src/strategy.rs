//! Search strategies over the parameter space.
//!
//! KernelTuner offers many; brute force is its default and is entirely
//! adequate for the paper's one-axis frequency sweep (§III-C notes brute
//! force "can be done in a reasonable amount of time" for small spaces).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::measure::ConfigResult;
use crate::space::{ParamSpace, ParamValues};
use crate::Objective;

/// Search strategy selector.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Evaluate every configuration.
    BruteForce,
    /// Evaluate a random sample (without replacement).
    Random { samples: usize, seed: u64 },
    /// Greedy hill-climbing over the cartesian-product index with restarts.
    HillClimb { restarts: usize, seed: u64 },
    /// Simulated annealing over the cartesian-product index (KernelTuner
    /// ships one too). Useful when the objective landscape has plateaus the
    /// greedy climber stalls on.
    Annealing {
        iterations: usize,
        seed: u64,
        initial_temp: f64,
    },
}

/// Record one configuration evaluation as a `tuner/eval` span.
fn traced_eval(
    evaluate: &mut dyn FnMut(&ParamValues) -> ConfigResult,
    p: &ParamValues,
) -> ConfigResult {
    let mut sp = telemetry::span_start("tuner", "eval");
    let r = evaluate(p);
    if sp.is_active() {
        if let Some(f) = r.params.frequency() {
            sp.field("freq_mhz", f.0);
        }
        sp.field("time_s", r.time_s);
        sp.field("energy_j", r.energy_j);
        sp.field("edp", r.edp);
    }
    r
}

impl Strategy {
    /// Short label for traces.
    fn label(&self) -> &'static str {
        match self {
            Strategy::BruteForce => "brute_force",
            Strategy::Random { .. } => "random",
            Strategy::HillClimb { .. } => "hill_climb",
            Strategy::Annealing { .. } => "annealing",
        }
    }

    /// Produce the list of evaluated configurations.
    pub fn search<F>(
        &self,
        space: &ParamSpace,
        objective: &Objective,
        mut inner: F,
    ) -> Vec<ConfigResult>
    where
        F: FnMut(&ParamValues) -> ConfigResult,
    {
        let all = space.enumerate();
        let mut sweep = telemetry::span_start("tuner", "sweep");
        if sweep.is_active() {
            sweep.field("strategy", self.label());
            sweep.field("space", all.len());
        }
        let mut evaluate = |p: &ParamValues| traced_eval(&mut inner, p);
        let results: Vec<ConfigResult> = match *self {
            Strategy::BruteForce => all.iter().map(&mut evaluate).collect(),
            Strategy::Random { samples, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut indices: Vec<usize> = (0..all.len()).collect();
                indices.shuffle(&mut rng);
                indices.truncate(samples.max(1).min(all.len()));
                indices.into_iter().map(|i| evaluate(&all[i])).collect()
            }
            Strategy::HillClimb { restarts, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut evaluated: Vec<(usize, ConfigResult)> = Vec::new();
                let eval_at = |i: usize,
                               evaluated: &mut Vec<(usize, ConfigResult)>,
                               evaluate: &mut dyn FnMut(&ParamValues) -> ConfigResult|
                 -> f64 {
                    if let Some((_, r)) = evaluated.iter().find(|(j, _)| *j == i) {
                        return objective.score(r);
                    }
                    let r = evaluate(&all[i]);
                    let s = objective.score(&r);
                    evaluated.push((i, r));
                    s
                };
                for _ in 0..restarts.max(1) {
                    let mut cur = rng.random_range(0..all.len());
                    let mut cur_score = eval_at(cur, &mut evaluated, &mut evaluate);
                    loop {
                        // Neighbors in enumeration order (adjacent indices):
                        // exact for 1-D spaces, heuristic for higher.
                        let mut improved = false;
                        for next in [cur.wrapping_sub(1), cur + 1] {
                            if next >= all.len() {
                                continue;
                            }
                            let s = eval_at(next, &mut evaluated, &mut evaluate);
                            if s < cur_score {
                                cur = next;
                                cur_score = s;
                                improved = true;
                                break;
                            }
                        }
                        if !improved {
                            break;
                        }
                    }
                }
                evaluated.into_iter().map(|(_, r)| r).collect()
            }
            Strategy::Annealing {
                iterations,
                seed,
                initial_temp,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut evaluated: Vec<(usize, ConfigResult)> = Vec::new();
                let eval_at = |i: usize,
                               evaluated: &mut Vec<(usize, ConfigResult)>,
                               evaluate: &mut dyn FnMut(&ParamValues) -> ConfigResult|
                 -> f64 {
                    if let Some((_, r)) = evaluated.iter().find(|(j, _)| *j == i) {
                        return objective.score(r);
                    }
                    let r = evaluate(&all[i]);
                    let s = objective.score(&r);
                    evaluated.push((i, r));
                    s
                };
                let mut cur = rng.random_range(0..all.len());
                let mut cur_score = eval_at(cur, &mut evaluated, &mut evaluate);
                // Normalize the temperature scale to the first score so the
                // acceptance probability is problem-size independent.
                let scale = cur_score.abs().max(1e-12);
                for step in 0..iterations.max(1) {
                    let temp = initial_temp * (1.0 - step as f64 / iterations.max(1) as f64);
                    // Propose a nearby index (±3 window keeps moves local on
                    // the frequency axis).
                    let delta = rng.random_range(-3i64..=3);
                    let cand = (cur as i64 + delta).rem_euclid(all.len() as i64) as usize;
                    let cand_score = eval_at(cand, &mut evaluated, &mut evaluate);
                    let accept = cand_score < cur_score || {
                        let d = (cand_score - cur_score) / scale;
                        temp > 0.0 && rng.random::<f64>() < (-d / temp).exp()
                    };
                    if accept {
                        cur = cand;
                        cur_score = cand_score;
                    }
                }
                evaluated.into_iter().map(|(_, r)| r).collect()
            }
        };
        sweep.field("evals", results.len());
        results
    }

    /// Like [`Strategy::search`] for evaluators that are safe to call
    /// concurrently. Brute force fans the sweep out across worker threads —
    /// results come back in enumeration order, so the output is identical
    /// to the serial sweep. The sampling and climbing strategies are
    /// inherently sequential (each step depends on earlier scores) and
    /// delegate to the serial path.
    pub fn search_parallel<F>(
        &self,
        space: &ParamSpace,
        objective: &Objective,
        evaluate: F,
    ) -> Vec<ConfigResult>
    where
        F: Fn(&ParamValues) -> ConfigResult + Sync,
    {
        match self {
            Strategy::BruteForce => {
                let all = space.enumerate();
                let mut sweep = telemetry::span_start("tuner", "sweep");
                if sweep.is_active() {
                    sweep.field("strategy", "brute_force_parallel");
                    sweep.field("space", all.len());
                }
                par::par_map(all.len(), |i| {
                    let mut one = |p: &ParamValues| evaluate(p);
                    traced_eval(&mut one, &all[i])
                })
            }
            _ => self.search(space, objective, evaluate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::MegaHertz;

    fn space() -> ParamSpace {
        let mut p = ParamSpace::new();
        p.add_frequency_range(MegaHertz(1005), MegaHertz(1410), 15);
        p
    }

    /// Synthetic objective: EDP minimized at 1110 MHz.
    fn fake_eval(a: &ParamValues) -> ConfigResult {
        let f = a.frequency().unwrap().0 as f64;
        let edp = (f - 1110.0).powi(2) + 1.0;
        ConfigResult {
            params: a.clone(),
            time_s: 1.0,
            energy_j: edp,
            edp,
        }
    }

    #[test]
    fn brute_force_covers_everything_in_order() {
        let out = Strategy::BruteForce.search(&space(), &Objective::Edp, fake_eval);
        assert_eq!(out.len(), 28);
        assert_eq!(out[0].params.frequency(), Some(MegaHertz(1410)));
    }

    #[test]
    fn random_without_replacement() {
        let out = Strategy::Random {
            samples: 10,
            seed: 1,
        }
        .search(&space(), &Objective::Edp, fake_eval);
        assert_eq!(out.len(), 10);
        let mut freqs: Vec<u32> = out
            .iter()
            .map(|c| c.params.frequency().unwrap().0)
            .collect();
        freqs.sort_unstable();
        freqs.dedup();
        assert_eq!(freqs.len(), 10, "samples must be distinct");
    }

    #[test]
    fn random_cannot_exceed_space() {
        let out = Strategy::Random {
            samples: 999,
            seed: 1,
        }
        .search(&space(), &Objective::Edp, fake_eval);
        assert_eq!(out.len(), 28);
    }

    #[test]
    fn hill_climb_finds_unimodal_minimum_without_full_sweep() {
        let out = Strategy::HillClimb {
            restarts: 2,
            seed: 3,
        }
        .search(&space(), &Objective::Edp, fake_eval);
        let best = out
            .iter()
            .min_by(|a, b| a.edp.partial_cmp(&b.edp).unwrap())
            .unwrap();
        assert_eq!(best.params.frequency(), Some(MegaHertz(1110)));
        assert!(out.len() < 28, "hill climb should not evaluate everything");
    }

    #[test]
    fn annealing_finds_the_minimum_and_memoizes() {
        let mut calls = 0usize;
        let out = Strategy::Annealing {
            iterations: 120,
            seed: 5,
            initial_temp: 0.5,
        }
        .search(&space(), &Objective::Edp, |a| {
            calls += 1;
            fake_eval(a)
        });
        let best = out
            .iter()
            .min_by(|a, b| a.edp.partial_cmp(&b.edp).unwrap())
            .unwrap();
        assert_eq!(best.params.frequency(), Some(MegaHertz(1110)));
        assert!(calls <= 28, "memoization bound violated: {calls}");
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let run = |seed| {
            Strategy::Annealing {
                iterations: 60,
                seed,
                initial_temp: 0.5,
            }
            .search(&space(), &Objective::Edp, fake_eval)
            .len()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn hill_climb_does_not_reevaluate_configs() {
        let mut calls = 0usize;
        let _ = Strategy::HillClimb {
            restarts: 5,
            seed: 9,
        }
        .search(&space(), &Objective::Edp, |a| {
            calls += 1;
            fake_eval(a)
        });
        assert!(calls <= 28, "memoization bound violated: {calls}");
    }
}
