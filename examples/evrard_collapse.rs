//! Run the Evrard collapse — the paper's gravity-bearing workload — as real
//! physics, watching energy conservation while the instrumented energy
//! accounting runs alongside (Table I row 2, Figs. 4-5's *-Evr cases).
//!
//! ```sh
//! cargo run --release --example evrard_collapse
//! ```

use gpu_freq_scaling::freqscale::{run_experiment, ExperimentSpec, FreqPolicy, WorkloadKind};
use gpu_freq_scaling::ranks::{run, CommCost};
use gpu_freq_scaling::sph::{evrard, NullObserver, SimConfig, Simulation};

fn main() {
    println!("== physics: 12^3-lattice Evrard collapse, 20 steps ==");
    let stats = run(1, CommCost::default(), |ctx| {
        let ic = evrard(12);
        let mut sim = Simulation::new(
            ic,
            SimConfig {
                target_particles_per_rank: 80e6,
                target_neighbors: 40,
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        for _ in 0..20 {
            out.push(sim.step(ctx, &mut NullObserver));
        }
        out
    })
    .remove(0);

    let e0 = stats.first().expect("steps ran").budget;
    println!("  step    dt         t      kinetic   internal   potential      total");
    for s in stats
        .iter()
        .step_by(4)
        .chain(std::iter::once(stats.last().expect("non-empty")))
    {
        println!(
            "{:>6}  {:>8.5}  {:>8.4}  {:>9.4}  {:>9.4}  {:>10.4}  {:>9.4}",
            s.step,
            s.dt,
            s.time,
            s.budget.kinetic,
            s.budget.internal,
            s.budget.potential,
            s.budget.total()
        );
    }
    let drift =
        (stats.last().expect("non-empty").budget.total() - e0.total()).abs() / e0.total().abs();
    println!(
        "collapse deepens the potential well while total energy drifts only {:.2}%\n",
        drift * 100.0
    );

    println!("== energy accounting for the same workload at paper scale (80 M/GPU) ==");
    let spec = ExperimentSpec {
        workload: WorkloadKind::Evrard { n_side: 10 },
        target_particles_per_rank: 80e6,
        ..ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 5)
    };
    let r = run_experiment(&spec);
    let agg = r.functions_all_ranks();
    let gravity = &agg["Gravity"];
    let total: f64 = agg.values().map(|f| f.gpu_j).sum();
    println!(
        "time-to-solution {:.3} s, GPU energy {:.1} J; Gravity alone is {:.1}% of GPU energy",
        r.time_to_solution_s,
        r.pmt_gpu_j,
        100.0 * gravity.gpu_j / total
    );
    println!("(the functional difference to the turbulence workload the paper selects for).");
}
