//! The paper's contribution in one sitting: tune per-kernel sweet-spot
//! frequencies with the KernelTuner-style harness (§III-C, Fig. 2), then
//! compare Baseline vs Static-1005 vs DVFS vs ManDyn on a single A100
//! (§IV-C/D, Fig. 7).
//!
//! ```sh
//! cargo run --release --example frequency_tuning
//! ```

use gpu_freq_scaling::archsim::{GpuSpec, MegaHertz};
use gpu_freq_scaling::freqscale::{
    policy::tune_table, run_experiment, ExperimentSpec, FreqPolicy, WorkloadKind,
};
use gpu_freq_scaling::tuner::Objective;

fn main() {
    let gpu = GpuSpec::a100_pcie_40gb();
    let n = 450.0f64.powi(3);

    println!("== step 1: per-kernel frequency tuning (best EDP, 1005-1410 MHz) ==");
    let (table, _detail) = tune_table(
        &gpu,
        n,
        MegaHertz(1005),
        MegaHertz(1410),
        Objective::Edp,
        false,
    );
    for (func, mhz) in &table {
        println!("{:>20} -> {}", func.name(), mhz);
    }

    println!("\n== step 2: run the policies on the instrumented simulation ==");
    let steps = 8;
    let mk_spec = |policy: FreqPolicy| {
        let mut s = ExperimentSpec::minihpc_turbulence(policy, steps);
        s.workload = WorkloadKind::Turbulence {
            n_side: 10,
            mach: 0.3,
            seed: 42,
        };
        s.target_particles_per_rank = n;
        s
    };
    let base = run_experiment(&mk_spec(FreqPolicy::Baseline));
    println!(
        "{:<14} time {:>7.3} s   GPU energy {:>8.1} J   EDP {:>9.1}",
        "baseline",
        base.time_to_solution_s,
        base.pmt_gpu_j,
        base.gpu_edp()
    );
    for policy in [
        FreqPolicy::Static(MegaHertz(1005)),
        FreqPolicy::Dvfs,
        FreqPolicy::ManDyn(table),
    ] {
        let r = run_experiment(&mk_spec(policy));
        let (t, e, edp) = r.normalized_to(&base);
        println!(
            "{:<14} time {:>7.3} s ({:+5.2}%)   GPU energy {:>8.1} J ({:+5.2}%)   EDP x{:.3}",
            r.policy,
            r.time_to_solution_s,
            (t - 1.0) * 100.0,
            r.pmt_gpu_j,
            (e - 1.0) * 100.0,
            edp
        );
    }
    println!("\npaper headline: ManDyn loses <= 2.95% time while saving up to 7.82% GPU energy;");
    println!(
        "DVFS matches baseline time but *costs* energy; static-1005 saves energy but is slow."
    );
}
