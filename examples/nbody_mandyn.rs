//! Future work, realized: apply the paper's instrumentation and ManDyn
//! frequency policy to *another* GPU simulation code (§V: "the proposed
//! method will be applied to other simulation codes").
//!
//! The N-body mini-app implements the same `StepObserver` hook protocol as
//! the SPH framework, so `EnergyInstrument` attaches without modification.
//!
//! ```sh
//! cargo run --release --example nbody_mandyn
//! ```

use std::collections::BTreeMap;

use gpu_freq_scaling::archsim::{mini_hpc, Cluster, GpuSpec, MegaHertz, SimInstant};
use gpu_freq_scaling::freqscale::{policy::tune_table, EnergyInstrument, FreqPolicy, RankReport};
use gpu_freq_scaling::nvml_shim::Nvml;
use gpu_freq_scaling::ranks::{run, CommCost};
use gpu_freq_scaling::sph::{plummer, FuncId, NBody, NBODY_FUNCS};
use gpu_freq_scaling::tuner::Objective;

fn run_policy(policy: FreqPolicy, steps: usize) -> RankReport {
    run(1, CommCost::default(), move |ctx| {
        let cluster = Cluster::for_ranks(mini_hpc(), 1);
        let nvml = Nvml::init_for_node(&cluster.nodes()[0]);
        let mut nb = NBody::new(plummer(800, 1.0, 42), 2e8);
        let mut inst =
            EnergyInstrument::new(&nvml, ctx.rank(), policy.clone()).expect("device binding");
        for _ in 0..steps {
            nb.step(ctx, &mut inst);
        }
        // Close the node timeline so loop totals are complete.
        cluster.nodes()[0].settle_until(SimInstant::from_nanos(ctx.now().as_nanos()), 0.2, 0.3);
        inst.finish(ctx)
    })
    .remove(0)
}

fn main() {
    let gpu = GpuSpec::a100_pcie_40gb();
    println!("== tuning the N-body function set (best EDP, 1005-1410 MHz) ==");
    let (full_table, _) = tune_table(
        &gpu,
        2e8,
        MegaHertz(1005),
        MegaHertz(1410),
        Objective::Edp,
        true,
    );
    let table: BTreeMap<FuncId, MegaHertz> = full_table
        .into_iter()
        .filter(|(f, _)| NBODY_FUNCS.contains(f))
        .collect();
    for (f, mhz) in &table {
        println!("{:>20} -> {}", f.name(), mhz);
    }

    println!("\n== baseline vs ManDyn on the N-body code ==");
    let steps = 12;
    let base = run_policy(FreqPolicy::Baseline, steps);
    let mandyn = run_policy(FreqPolicy::ManDyn(table), steps);
    let t = mandyn.loop_time_s / base.loop_time_s;
    let e = mandyn.gpu_loop_j / base.gpu_loop_j;
    println!(
        "baseline: {:.3} s, {:.1} J   |   mandyn: {:.3} s ({:+.2}%), {:.1} J ({:+.2}%)",
        base.loop_time_s,
        base.gpu_loop_j,
        mandyn.loop_time_s,
        (t - 1.0) * 100.0,
        mandyn.gpu_loop_j,
        (e - 1.0) * 100.0,
    );
    println!("EDP x{:.3}", t * e);
    println!("\nGravity is compute-bound (stays near max clock); the domain/reduction functions");
    println!("tune low — the same per-kernel split the paper found in SPH-EXA carries over.");
}
