//! The online extension in one sitting: learn the per-kernel sweet-spot
//! table *during* the run (no offline KernelTuner pass), persist it to a
//! table store, warm-start a second run from it, and finish with a
//! power-capped run that honors a facility watt budget.
//!
//! ```sh
//! cargo run --release --example online_mandyn
//! ```

use gpu_freq_scaling::archsim::GpuSpec;
use gpu_freq_scaling::freqscale::{run_experiment, ExperimentSpec, FreqPolicy, WorkloadKind};
use gpu_freq_scaling::online::OnlineTunerConfig;

fn mk_spec(policy: FreqPolicy, steps: usize) -> ExperimentSpec {
    let mut s = ExperimentSpec::minihpc_turbulence(policy, steps);
    s.workload = WorkloadKind::Turbulence {
        n_side: 6,
        mach: 0.3,
        seed: 9,
    };
    s.target_neighbors = 30;
    s
}

fn main() {
    let store = std::env::temp_dir().join("online-mandyn-example");
    let _ = std::fs::remove_dir_all(&store);

    println!("== step 1: cold run — the tuner explores the ladder in-run ==");
    let steps = 70;
    let base = run_experiment(&mk_spec(FreqPolicy::Baseline, steps));
    let mut cold_spec = mk_spec(
        FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        steps,
    );
    cold_spec.table_store = Some(store.clone());
    let cold = run_experiment(&cold_spec);
    let (t, e, _) = cold.normalized_to(&base);
    println!(
        "cold:  time {:+5.2}%  GPU energy {:+5.2}%  explored {} launches",
        (t - 1.0) * 100.0,
        (e - 1.0) * 100.0,
        cold.per_rank[0].exploration_launches
    );
    println!("learned table (persisted to {}):", store.display());
    for (func, mhz) in &cold.per_rank[0].learned_table {
        println!("{func:>20} -> {mhz} MHz");
    }

    println!("\n== step 2: warm run — the store pins every kernel up front ==");
    let mut warm_spec = mk_spec(
        FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        steps,
    );
    warm_spec.table_store = Some(store.clone());
    let warm = run_experiment(&warm_spec);
    let (t, e, _) = warm.normalized_to(&base);
    println!(
        "warm:  time {:+5.2}%  GPU energy {:+5.2}%  explored {} launches",
        (t - 1.0) * 100.0,
        (e - 1.0) * 100.0,
        warm.per_rank[0].exploration_launches
    );

    println!("\n== step 3: the same run under a facility power cap ==");
    let gpu = GpuSpec::a100_pcie_40gb();
    let budget_w = 0.75 * gpu.tdp().0;
    let mut capped_spec = mk_spec(
        FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        steps,
    );
    capped_spec.table_store = Some(store.clone());
    capped_spec.power_cap_w = Some(budget_w);
    capped_spec.collect_trace = true;
    let capped = run_experiment(&capped_spec);
    let peak = capped.per_rank[0]
        .power_trace
        .iter()
        .map(|(_, w)| *w)
        .fold(0.0, f64::max);
    println!(
        "capped at {budget_w:.0} W: trace peak {peak:.1} W, GPU energy {:>7.1} J",
        capped.pmt_gpu_j
    );

    let _ = std::fs::remove_dir_all(&store);
    println!("\nheadline: the warm-up amortizes away within one run, removing the");
    println!("offline KernelTuner prerequisite, and the learned table composes with");
    println!("a per-rank watt budget that the measured trace never exceeds.");
}
