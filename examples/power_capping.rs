//! Power caps and thermal slowdown: the *other* clock-control loops a
//! frequency-scaling tool coexists with (§II background; extension features).
//!
//! Shows `nvmlDeviceSetPowerManagementLimit` pulling clocks down when a
//! kernel would exceed the board limit, the junction heating toward its RC
//! steady state, and the clocks-event reasons a monitoring loop would see.
//!
//! ```sh
//! cargo run --release --example power_capping
//! ```

use std::sync::Arc;

use gpu_freq_scaling::archsim::{GpuDevice, GpuSpec, KernelWorkload, SimDuration};
use gpu_freq_scaling::nvml_shim::{clocks_event_reasons, Nvml, TemperatureSensor};
use parking_lot::Mutex;

fn main() {
    let gpu = Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_pcie_40gb())));
    let nvml = Nvml::init(vec![Arc::clone(&gpu)]);
    let dev = nvml.device_by_index(0).expect("device 0");
    let (min_mw, max_mw) = dev
        .power_management_limit_constraints()
        .expect("constraints");
    println!(
        "device: {} — power limit range {:.0}-{:.0} W, default {:.0} W",
        dev.name(),
        min_mw as f64 / 1e3,
        max_mw as f64 / 1e3,
        dev.power_management_limit().expect("limit") as f64 / 1e3
    );

    let n = 450.0f64.powi(3);
    let hot_kernel = KernelWorkload::new("MomentumEnergy", 4800.0 * n, 810.0 * n)
        .with_activity(0.95, 0.75)
        .with_parallelism(n);

    dev.set_applications_clocks(1593, 1410)
        .expect("pin max clocks");
    println!("\n  cap [W]  avg clock  time [ms]  energy [J]   temp [C]  reasons");
    for cap_w in [250u64, 220, 190, 160] {
        dev.set_power_management_limit(cap_w * 1000)
            .expect("valid cap");
        // Run a burst of kernels under this cap.
        let exec = {
            let mut g = gpu.lock();
            let mut last = None;
            for _ in 0..20 {
                last = Some(g.run_region(&hot_kernel));
                g.advance_idle(SimDuration::from_millis(1));
            }
            last.expect("ran kernels")
        };
        let reasons = dev.current_clocks_event_reasons().expect("reasons");
        let mut tags = Vec::new();
        if reasons & clocks_event_reasons::SW_POWER_CAP != 0 {
            tags.push("SW_POWER_CAP");
        }
        if reasons & clocks_event_reasons::HW_THERMAL_SLOWDOWN != 0 {
            tags.push("HW_THERMAL_SLOWDOWN");
        }
        if reasons & clocks_event_reasons::APPLICATIONS_CLOCKS_SETTING != 0 {
            tags.push("APP_CLOCKS");
        }
        println!(
            "  {:>7}  {:>9}  {:>9.2}  {:>10.2}  {:>9}  {}",
            cap_w,
            format!("{}", exec.avg_freq),
            exec.duration().as_millis_f64(),
            exec.energy.0,
            dev.temperature(TemperatureSensor::Gpu).expect("temp"),
            tags.join("+"),
        );
    }

    println!("\nLower caps force lower clocks (and stretch the kernel); the junction settles");
    println!("below its slowdown threshold because the cap bounds the heat input. A ManDyn-");
    println!("style tool must treat these loops as co-authorities over the clock: whatever");
    println!("frequency it requests, the cap and the thermal governor may pull it lower.");
}
