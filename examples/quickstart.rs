//! Quickstart: drive one simulated A100 through the NVML shim, measure a
//! kernel with PMT, and see what frequency scaling does to it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use gpu_freq_scaling::archsim::{GpuDevice, GpuSpec, KernelWorkload};
use gpu_freq_scaling::nvml_shim::{ClockType, Nvml};
use gpu_freq_scaling::pmt::{backends::NvmlSensor, joules, seconds, Pmt};
use parking_lot::Mutex;

fn main() {
    // One A100-PCIE, as in the paper's miniHPC node.
    let gpu = Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_pcie_40gb())));
    let nvml = Nvml::init(vec![Arc::clone(&gpu)]);
    let dev = nvml.device_by_index(0).expect("device 0 exists");
    println!("device: {}", dev.name());
    println!(
        "supported graphics clocks: {} steps, {}..{} MHz",
        dev.supported_graphics_clocks(1593)
            .expect("mem clock valid")
            .len(),
        210,
        1410
    );

    // A MomentumEnergy-like kernel at the paper's 450^3 problem size.
    let n = 450.0f64.powi(3);
    let work = KernelWorkload::new("MomentumEnergy", 4800.0 * n, 810.0 * n)
        .with_activity(0.95, 0.55)
        .with_parallelism(n);

    let mut pmt = Pmt::new(Box::new(NvmlSensor::new(&dev)));
    for mhz in [1410u32, 1200, 1005] {
        // The paper's instrumentation call: memory clock first, then compute.
        dev.set_applications_clocks(1593, mhz)
            .expect("clock supported");
        let start = pmt.read();
        gpu.lock().run_region(&work);
        let end = pmt.read();
        println!(
            "{:>4} MHz: time {:>7.2} ms   energy {:>6.2} J   avg power {:>6.1} W   (clock reads {} MHz)",
            mhz,
            seconds(&start, &end) * 1e3,
            joules(&start, &end).0,
            joules(&start, &end).0 / seconds(&start, &end),
            dev.clock_info(ClockType::Graphics).expect("clock query"),
        );
    }
    println!("\nCompute-bound kernels lose time roughly with 1/f but save energy through the");
    println!("V^2 term — the trade-off the paper's ManDyn policy navigates per kernel.");
}
