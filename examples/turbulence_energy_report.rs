//! The paper's measurement workflow end-to-end: run an instrumented Subsonic
//! Turbulence simulation on a simulated CSCS-A100 partition, then print what
//! each measurement layer sees — per-device breakdown (Fig. 4), per-function
//! breakdown (Fig. 5), PMT vs Slurm totals (Fig. 3) — and write the JSON
//! report file the analysis scripts consume.
//!
//! ```sh
//! cargo run --release --example turbulence_energy_report
//! ```

use gpu_freq_scaling::archsim;
use gpu_freq_scaling::freqscale::{run_experiment, ExperimentSpec, FreqPolicy, WorkloadKind};
use gpu_freq_scaling::ranks::CommCost;
use gpu_freq_scaling::sph::Kernel;

fn main() {
    let spec = ExperimentSpec {
        system: archsim::cscs_a100(),
        ranks: 8,
        workload: WorkloadKind::Turbulence {
            n_side: 12,
            mach: 0.3,
            seed: 7,
        },
        steps: 5,
        policy: FreqPolicy::Baseline,
        target_particles_per_rank: 150e6,
        setup: archsim::SimDuration::from_secs(2),
        comm: CommCost::default(),
        kernel: Kernel::CubicSpline,
        target_neighbors: 40,
        collect_trace: false,
        slurm_gpu_freq: None,
        slurm_cpu_freq_khz: None,
        report_dir: None,
        power_cap_w: None,
        table_store: None,
        memory_clock: None,
        faults: None,
        scenario: None,
        checkpoint_dir: None,
        checkpoint_every: 0,
        restore_from: None,
        repart_skew_threshold: None,
        halo_overlap: true,
    };
    println!(
        "running {} on {} with {} ranks ({} steps, 150 M particles/GPU at paper scale)...",
        spec.workload.name(),
        spec.system.name,
        spec.ranks,
        spec.steps
    );
    let result = run_experiment(&spec);

    println!("\n== job summary =====================================================");
    println!(
        "time-to-solution (loop): {:>10.3} s",
        result.time_to_solution_s
    );
    println!("job elapsed (w/ setup):  {:>10.3} s", result.job_elapsed_s);
    println!("PMT GPU energy (loop):   {:>10.1} J", result.pmt_gpu_j);
    println!("PMT devices (loop):      {:>10.1} J", result.pmt_total_j);
    println!(
        "Slurm ConsumedEnergy:    {:>10.1} J  (whole job, all node components)",
        result.slurm_consumed_j
    );
    println!("loop EDP:                {:>10.1} J*s", result.edp());

    println!("\n== per-device breakdown (Fig. 4 view) ==============================");
    let totals = result.device_totals();
    let (gpu, cpu, _mem, other) = totals.shares();
    let (_, _, other_with_mem) = totals.shares_mem_in_other();
    println!(
        "GPU {:.1}%  CPU {:.1}%  Other(+mem) {:.1}%",
        gpu * 100.0,
        cpu * 100.0,
        other_with_mem * 100.0
    );
    let _ = other;

    println!("\n== per-function breakdown (Fig. 5 view) ============================");
    let agg = result.functions_all_ranks();
    let gpu_total: f64 = agg.values().map(|f| f.gpu_j).sum();
    let mut rows: Vec<_> = agg.iter().collect();
    rows.sort_by(|a, b| b.1.gpu_j.partial_cmp(&a.1.gpu_j).expect("finite energy"));
    for (name, f) in rows {
        println!(
            "{name:>20}: {:>5.1}% of GPU energy  ({:>8.2} J, {:>7.3} s, {} calls)",
            100.0 * f.gpu_j / gpu_total,
            f.gpu_j,
            f.time_s,
            f.calls
        );
    }

    let path = std::env::temp_dir().join("turbulence_energy_report.json");
    std::fs::write(&path, result.to_json()).expect("report written");
    println!("\nfull report written to {}", path.display());
}
