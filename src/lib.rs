//! # gpu-freq-scaling
//!
//! Rust reproduction of **"Increasing Energy Efficiency of Astrophysics
//! Simulations Through GPU Frequency Scaling"** (Simsek, Piccinali, Ciorba —
//! SC 2024), built entirely on simulated hardware so the full experiment
//! pipeline — instrumented energy measurement, per-kernel frequency tuning,
//! and dynamic frequency scaling — runs on any laptop.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`archsim`] — CPU+GPU node architecture simulator (roofline execution,
//!   DVFS power model, boost governor, virtual time);
//! * [`nvml_shim`] — NVML/rocm-smi-shaped device control plane;
//! * [`pm_counters`] — HPE/Cray 10 Hz out-of-band node energy counters;
//! * [`pmt`] — Power Measurement Toolkit (sensor trait + backends);
//! * [`ranks`] — MPI-like rank runtime with virtual-clock collectives;
//! * [`cornerstone`] — SFC keys, octree, neighbor search, domain
//!   decomposition;
//! * [`sph`] — SPH-EXA-like hydrodynamics framework with profiling hooks;
//! * [`tuner`] — KernelTuner-style frequency sweep harness;
//! * [`slurm_sim`] — job energy accounting (`sacct` / `ConsumedEnergy`);
//! * [`online`] — in-run autotuning: online per-kernel frequency search,
//!   learned-table persistence, and power-cap coordination;
//! * [`freqscale`] — the paper's contribution: instrumentation + the
//!   Baseline / Static / DVFS / ManDyn / ManDynOnline frequency policies.
//!
//! ## Quickstart
//!
//! ```
//! use freqscale::{run_experiment, ExperimentSpec, FreqPolicy};
//!
//! let spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 2);
//! let result = run_experiment(&spec);
//! assert!(result.time_to_solution_s > 0.0);
//! assert!(result.pmt_gpu_j > 0.0);
//! ```
//!
//! See `examples/` for the full workflows and `crates/bench` for the
//! regenerators of every table and figure in the paper.

pub use archsim;
pub use cornerstone;
pub use freqscale;
pub use nvml_shim;
pub use online;
pub use pm_counters;
pub use pmt;
pub use ranks;
pub use serve;
pub use slurm_sim;
pub use sph;
pub use tuner;
