//! Chaos end-to-end: the online tuner must ride out the standard fault mix.
//!
//! The acceptance run injects transient clock-set rejections, silent clamps,
//! dropped power samples and an energy-counter rollover into a ManDynOnline
//! Evrard experiment. The run must complete, every injected fault must be
//! recovered by the resilience layer that owns its channel, the recoveries
//! must be visible in the telemetry trace, and the resulting GPU EDP must
//! stay within 10% of the fault-free run — faults cost noise, not the
//! energy-efficiency result.

use freqscale::{run_experiment, ExperimentSpec, FreqPolicy, WorkloadKind};
use online::OnlineTunerConfig;

fn evrard_online_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(
        FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        30,
    );
    spec.workload = WorkloadKind::Evrard { n_side: 8 };
    spec.target_particles_per_rank = 80e6;
    spec.target_neighbors = 30;
    spec
}

#[test]
fn online_tuner_rides_out_the_standard_chaos_mix() {
    if !faults::ENABLED {
        return;
    }
    let clean = run_experiment(&evrard_online_spec());
    assert_eq!(clean.fault_stats.injected(), 0, "no profile, no faults");

    // The acceptance profile: 5% clock-set rejection, 2% silent clamping,
    // 1% dropped + 0.5% duplicated samples, and an energy register sized so
    // the cumulative counter wraps mid-run (0.6x the clean loop energy).
    let mut profile = faults::FaultProfile::chaos();
    profile.energy_rollover_j = Some(clean.per_rank[0].gpu_loop_j * 0.6);
    let mut spec = evrard_online_spec();
    spec.faults = Some(profile);

    if telemetry::ENABLED {
        telemetry::start();
    }
    let chaos = run_experiment(&spec);
    let stats = chaos.fault_stats;

    // Faults actually landed on every exercised channel...
    assert!(
        stats.clock_set_injected > 0,
        "rejections must fire: {stats:?}"
    );
    assert!(
        stats.clock_clamp_injected > 0,
        "clamps must fire: {stats:?}"
    );
    assert!(
        stats.power_sample_injected > 0,
        "drops must fire: {stats:?}"
    );
    assert!(
        stats.energy_counter_injected >= 1,
        "the energy register must wrap at least once: {stats:?}"
    );
    // ...and every one of them was absorbed by its resilience layer.
    assert!(
        stats.all_recovered(),
        "unrecovered faults remain: {}",
        stats.summary()
    );

    // Recoveries are observable in the trace, not just in the counters.
    if telemetry::ENABLED {
        let data = telemetry::stop();
        let mut injected = 0usize;
        let mut recovered = 0usize;
        for track in &data.tracks {
            for event in &track.events {
                if let telemetry::Event::Instant(i) = event {
                    if i.cat == "faults" {
                        match i.name {
                            "injected" => injected += 1,
                            "recovered" => recovered += 1,
                            _ => {}
                        }
                    }
                }
            }
        }
        assert!(injected > 0, "injection instants must be traced");
        assert!(recovered > 0, "recovery instants must be traced");
    }

    // The run completed with a sane report and a bounded EDP penalty.
    assert_eq!(chaos.per_rank.len(), 1);
    assert!(chaos.pmt_gpu_j > 0.0);
    let rel = (chaos.gpu_edp() - clean.gpu_edp()).abs() / clean.gpu_edp();
    assert!(
        rel < 0.10,
        "chaos EDP must stay within 10% of fault-free: {:.2}% off ({} vs {})",
        rel * 100.0,
        chaos.gpu_edp(),
        clean.gpu_edp()
    );
}

#[test]
fn inert_profile_changes_nothing() {
    // A spec carrying an all-zero profile must be byte-equivalent to no
    // profile at all — the injector contract that makes `faults` safe to
    // leave in default features.
    let base = run_experiment(&evrard_online_spec());
    let mut spec = evrard_online_spec();
    spec.faults = Some(faults::FaultProfile::default());
    let inert = run_experiment(&spec);
    assert_eq!(base.fault_stats, inert.fault_stats);
    assert_eq!(base.pmt_gpu_j.to_bits(), inert.pmt_gpu_j.to_bits());
    assert_eq!(
        base.time_to_solution_s.to_bits(),
        inert.time_to_solution_s.to_bits()
    );
}
