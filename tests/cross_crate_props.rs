//! Property-based tests over the public cross-crate APIs: energy accounting
//! invariants that must hold for *any* workload, frequency, and topology.

use std::sync::Arc;

use gpu_freq_scaling::archsim::{
    ClockPolicy, GpuDevice, GpuSpec, KernelWorkload, MegaHertz, SimDuration, SimInstant,
};
use gpu_freq_scaling::nvml_shim::Nvml;
use gpu_freq_scaling::pmt::{backends::NvmlSensor, joules, Pmt};
use parking_lot::Mutex;
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = KernelWorkload> {
    (
        1e6f64..1e13, // flops
        1e6f64..1e12, // bytes
        1u32..400,    // launches
        0.0f64..=1.0, // compute activity
        0.0f64..=1.0, // memory activity
        0.0f64..2e8,  // parallelism
    )
        .prop_map(|(flops, bytes, launches, ca, ma, par)| {
            KernelWorkload::new("prop", flops, bytes)
                .with_launches(launches)
                .with_activity(ca, ma)
                .with_parallelism(par)
        })
}

fn arb_clock() -> impl Strategy<Value = MegaHertz> {
    // A100 ladder: 210..=1410 step 15.
    (0u32..=80).prop_map(|i| MegaHertz(210 + i * 15))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn energy_is_power_integral_for_any_workload(w in arb_workload(), f in arb_clock()) {
        let mut dev = GpuDevice::new(0, GpuSpec::a100_sxm4_80gb());
        dev.set_application_clocks(f).expect("ladder clock");
        let exec = dev.run_region(&w);
        // Device-reported region energy equals the timeline integral.
        let direct = dev.energy_between(exec.start, exec.end);
        prop_assert!((exec.energy.0 - direct.0).abs() < 1e-9);
        // Power never exceeds TDP + transition smearing slack.
        let avg_w = exec.energy.average_power(exec.duration()).0;
        prop_assert!(avg_w <= dev.spec().tdp().0 * 1.05, "avg power {avg_w}");
        prop_assert!(avg_w >= dev.spec().idle_power.0 * 0.99, "avg power {avg_w}");
    }

    #[test]
    fn lower_clock_is_never_faster(w in arb_workload(), a in arb_clock(), b in arb_clock()) {
        prop_assume!(a < b);
        let run_at = |f: MegaHertz| {
            let mut dev = GpuDevice::new(0, GpuSpec::a100_sxm4_80gb());
            dev.set_application_clocks(f).expect("ladder clock");
            dev.run_region(&w).duration()
        };
        prop_assert!(run_at(a) >= run_at(b), "monotonicity violated for {a} vs {b}");
    }

    #[test]
    fn pmt_regions_tile_the_timeline(w in arb_workload(), f in arb_clock(), n in 1usize..6) {
        let gpu = Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_sxm4_80gb())));
        gpu.lock().set_application_clocks(f).expect("ladder clock");
        let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&gpu))));
        let start = pmt.read();
        let mut region_sum = 0.0;
        for _ in 0..n {
            let s = pmt.read();
            gpu.lock().run_region(&w);
            gpu.lock().advance_idle(SimDuration::from_micros(100));
            let e = pmt.read();
            region_sum += joules(&s, &e).0;
        }
        let end = pmt.read();
        let total = joules(&start, &end).0;
        prop_assert!((region_sum - total).abs() < 1e-6 * total.max(1.0),
            "regions {region_sum} vs total {total}");
    }

    #[test]
    fn dvfs_clock_stays_inside_the_ladder(w in arb_workload(), n in 1usize..5) {
        let mut dev = GpuDevice::new(0, GpuSpec::a100_sxm4_80gb());
        prop_assert!(matches!(dev.policy(), ClockPolicy::Dvfs(_)));
        for _ in 0..n {
            dev.run_region(&w);
            dev.advance_idle(SimDuration::from_millis(1));
            let f = dev.current_freq();
            prop_assert!(dev.spec().clock_table.supports(f), "off-ladder clock {f}");
        }
        // Frequency trace is time-monotone.
        let pts = dev.freq_timeline().points();
        prop_assert!(pts.windows(2).all(|p| p[0].0 <= p[1].0));
    }

    #[test]
    fn nvml_counters_agree_with_device_state(w in arb_workload(), f in arb_clock()) {
        let gpu = Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_sxm4_80gb())));
        let nvml = Nvml::init(vec![Arc::clone(&gpu)]);
        let dev = nvml.device_by_index(0).expect("one device");
        dev.set_applications_clocks(1593, f.0).expect("ladder clock");
        gpu.lock().run_region(&w);
        let mj = dev.total_energy_consumption().expect("counter");
        let direct = gpu.lock().total_energy().0;
        prop_assert!(((mj as f64) / 1e3 - direct).abs() < 0.01 * direct.max(1.0) + 0.01);
        prop_assert_eq!(
            dev.clock_info(gpu_freq_scaling::nvml_shim::ClockType::Graphics).expect("clock"),
            f.0
        );
    }

    #[test]
    fn timeline_energy_is_additive_over_any_split(
        w in arb_workload(),
        f in arb_clock(),
        split in 0.0f64..=1.0,
    ) {
        let mut dev = GpuDevice::new(0, GpuSpec::a100_sxm4_80gb());
        dev.set_application_clocks(f).expect("ladder clock");
        dev.run_region(&w);
        let end = dev.now();
        let mid = SimInstant::from_nanos((end.as_nanos() as f64 * split) as u64);
        let total = dev.energy_between(SimInstant::ZERO, end);
        let parts = dev.energy_between(SimInstant::ZERO, mid) + dev.energy_between(mid, end);
        prop_assert!((total.0 - parts.0).abs() < 1e-9 * total.0.max(1.0));
    }
}
