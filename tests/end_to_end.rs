//! Integration tests spanning every crate: the full measurement pipeline
//! from SPH physics through the architecture simulator to the reports.

use gpu_freq_scaling::archsim::{self, MegaHertz, SimDuration};
use gpu_freq_scaling::freqscale::{
    run_experiment, ExperimentResult, ExperimentSpec, FreqPolicy, WorkloadKind,
};
use gpu_freq_scaling::ranks::CommCost;
use gpu_freq_scaling::sph::Kernel;

fn small_spec(system: archsim::SystemSpec, ranks: usize, policy: FreqPolicy) -> ExperimentSpec {
    ExperimentSpec {
        system,
        ranks,
        workload: WorkloadKind::Turbulence {
            n_side: 8,
            mach: 0.3,
            seed: 5,
        },
        steps: 3,
        policy,
        target_particles_per_rank: 150e6,
        setup: SimDuration::from_secs(1),
        comm: CommCost::default(),
        kernel: Kernel::CubicSpline,
        target_neighbors: 30,
        collect_trace: false,
        slurm_gpu_freq: None,
        slurm_cpu_freq_khz: None,
        report_dir: None,
        power_cap_w: None,
        table_store: None,
        memory_clock: None,
        faults: None,
        scenario: None,
        checkpoint_dir: None,
        checkpoint_every: 0,
        restore_from: None,
        repart_skew_threshold: None,
        halo_overlap: true,
    }
}

fn check_consistency(r: &ExperimentResult) {
    // Time views.
    assert!(r.time_to_solution_s > 0.0);
    assert!(r.job_elapsed_s > r.time_to_solution_s, "job includes setup");
    // Node energy equals the sum of its breakdown parts.
    let device_total: f64 = r.per_node.iter().map(|n| n.total_j()).sum();
    assert!((device_total - r.node_loop_j).abs() < 1e-6);
    // The instrumented GPUs are a subset of all node GPU energy.
    let node_gpu: f64 = r.per_node.iter().map(|n| n.gpu_j).sum();
    assert!(r.pmt_gpu_j <= node_gpu + 1e-6);
    // Slurm (whole job, all components) must exceed PMT (loop, devices only).
    assert!(r.slurm_consumed_j > r.pmt_total_j);
    // Per-rank function accounting covers the loop.
    for rank in &r.per_rank {
        assert!(rank.functions_time_s() <= rank.loop_time_s + 1e-9);
        assert!(rank.functions_time_s() > 0.9 * rank.loop_time_s);
        assert!(rank.functions_gpu_j() <= rank.gpu_loop_j + 1e-6);
        assert!(rank.functions_gpu_j() > 0.9 * rank.gpu_loop_j);
    }
}

#[test]
fn every_system_runs_the_full_pipeline() {
    for system in archsim::all_systems() {
        let ranks = system.node.gpu_devices as usize; // one node's worth
        let r = run_experiment(&small_spec(system.clone(), ranks, FreqPolicy::Baseline));
        check_consistency(&r);
        assert_eq!(r.system, system.name);
        assert_eq!(r.per_rank.len(), ranks);
        assert_eq!(r.per_node.len(), 1);
    }
}

#[test]
fn multi_node_runs_partition_ranks_correctly() {
    let r = run_experiment(&small_spec(archsim::cscs_a100(), 12, FreqPolicy::Baseline));
    check_consistency(&r);
    assert_eq!(r.per_node.len(), 3, "12 ranks over 4-GPU nodes");
    // Every rank contributed and every node drew energy.
    assert!(r.per_rank.iter().all(|rr| rr.gpu_loop_j > 0.0));
    assert!(r.per_node.iter().all(|n| n.total_j() > 0.0));
}

#[test]
fn report_json_roundtrips_through_files() {
    let r = run_experiment(&small_spec(archsim::mini_hpc(), 1, FreqPolicy::Baseline));
    let json = r.to_json();
    let back = ExperimentResult::from_json(&json).expect("parse back");
    assert_eq!(back.system, r.system);
    assert_eq!(back.per_rank.len(), r.per_rank.len());
    assert_eq!(
        back.per_rank[0].functions.len(),
        r.per_rank[0].functions.len()
    );
    assert!((back.pmt_gpu_j - r.pmt_gpu_j).abs() < 1e-6);
}

#[test]
fn experiments_are_deterministic() {
    let a = run_experiment(&small_spec(archsim::mini_hpc(), 2, FreqPolicy::Baseline));
    let b = run_experiment(&small_spec(archsim::mini_hpc(), 2, FreqPolicy::Baseline));
    assert_eq!(a.time_to_solution_s, b.time_to_solution_s);
    assert_eq!(a.pmt_gpu_j, b.pmt_gpu_j);
    assert_eq!(a.slurm_consumed_j, b.slurm_consumed_j);
}

#[test]
fn gpu_dominates_node_energy_like_fig4() {
    // §IV-B: the GPU consumes ~3/4 of node energy on both systems.
    for system in [archsim::lumi_g(), archsim::cscs_a100()] {
        let ranks = system.node.gpu_devices as usize;
        let r = run_experiment(&small_spec(system.clone(), ranks, FreqPolicy::Baseline));
        let (gpu, cpu, _mem, _other) = r.device_totals().shares();
        assert!(
            (0.60..=0.88).contains(&gpu),
            "{}: GPU share {gpu} out of the Fig. 4 ballpark",
            system.name
        );
        assert!(cpu < gpu, "CPU share must stay below GPU");
    }
}

#[test]
fn static_policy_only_works_where_clock_control_is_allowed() {
    // miniHPC honours the request.
    let mini = run_experiment(&small_spec(
        archsim::mini_hpc(),
        1,
        FreqPolicy::Static(MegaHertz(1110)),
    ));
    assert!(!mini.per_rank[0].clock_control_denied);
    let f = mini.per_rank[0]
        .functions
        .values()
        .next()
        .expect("functions recorded");
    assert!((f.avg_freq_mhz - 1110.0).abs() < 1.0);

    // CSCS denies it and stays at the centre default.
    let cscs = run_experiment(&small_spec(
        archsim::cscs_a100(),
        4,
        FreqPolicy::Static(MegaHertz(1110)),
    ));
    assert!(cscs.per_rank.iter().all(|r| r.clock_control_denied));
    let f = cscs.per_rank[0]
        .functions
        .values()
        .next()
        .expect("functions recorded");
    assert!(
        (f.avg_freq_mhz - 1410.0).abs() < 1.0,
        "pinned at centre default"
    );
}

#[test]
fn evrard_and_turbulence_differ_by_gravity() {
    let turb = run_experiment(&small_spec(archsim::mini_hpc(), 1, FreqPolicy::Baseline));
    let mut spec = small_spec(archsim::mini_hpc(), 1, FreqPolicy::Baseline);
    spec.workload = WorkloadKind::Evrard { n_side: 8 };
    spec.target_particles_per_rank = 80e6;
    let evr = run_experiment(&spec);
    assert!(!turb.per_rank[0].functions.contains_key("Gravity"));
    assert!(evr.per_rank[0].functions.contains_key("Gravity"));
    assert_eq!(turb.per_rank[0].functions.len(), 11);
    assert_eq!(evr.per_rank[0].functions.len(), 12);
}
