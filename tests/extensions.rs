//! Integration tests for the beyond-the-paper features: thermal/power-cap
//! loops, memory-clock control, online auto-tuning, Pareto analysis, and
//! communication accounting — all exercised through the public APIs.

use std::sync::Arc;

use gpu_freq_scaling::archsim::{GpuDevice, GpuSpec, KernelWorkload, MegaHertz, SimDuration};
use gpu_freq_scaling::freqscale::{
    pareto_front, run_experiment, ExperimentSpec, FreqPolicy, PolicyPoint, WorkloadKind,
};
use gpu_freq_scaling::nvml_shim::{clocks_event_reasons, Nvml, TemperatureSensor};
use gpu_freq_scaling::ranks::{run, CommCost, Op};
use parking_lot::Mutex;

fn quick_spec(policy: FreqPolicy) -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(policy, 3);
    spec.workload = WorkloadKind::Turbulence {
        n_side: 7,
        mach: 0.3,
        seed: 2,
    };
    spec.target_neighbors = 30;
    spec
}

#[test]
fn power_cap_pipeline_through_nvml() {
    let gpu = Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_pcie_40gb())));
    let nvml = Nvml::init(vec![Arc::clone(&gpu)]);
    let dev = nvml.device_by_index(0).expect("device");
    dev.set_applications_clocks(1593, 1410).expect("pin");
    dev.set_power_management_limit(180_000).expect("cap 180 W");
    let n = 450.0f64.powi(3);
    let w = KernelWorkload::new("hot", 4800.0 * n, 810.0 * n)
        .with_activity(0.95, 0.75)
        .with_parallelism(n);
    let exec = gpu.lock().run_region(&w);
    assert!(
        exec.avg_freq < MegaHertz(1410),
        "cap must pull clocks: {}",
        exec.avg_freq
    );
    let avg_w = exec.energy.0 / exec.duration().as_secs_f64();
    assert!(avg_w < 195.0, "average power must respect the cap: {avg_w}");
    let reasons = dev.current_clocks_event_reasons().expect("reasons");
    assert!(reasons & clocks_event_reasons::SW_POWER_CAP != 0);
}

#[test]
fn junction_heats_during_an_experiment_and_reads_via_nvml() {
    let gpu = Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_pcie_40gb())));
    let nvml = Nvml::init(vec![Arc::clone(&gpu)]);
    let dev = nvml.device_by_index(0).expect("device");
    let t0 = dev.temperature(TemperatureSensor::Gpu).expect("temp");
    dev.set_applications_clocks(1593, 1410).expect("pin");
    let n = 450.0f64.powi(3);
    let w = KernelWorkload::new("k", 4800.0 * n, 810.0 * n)
        .with_activity(0.9, 0.6)
        .with_parallelism(n);
    for _ in 0..100 {
        gpu.lock().run_region(&w);
    }
    let t1 = dev.temperature(TemperatureSensor::Gpu).expect("temp");
    assert!(
        t1 > t0 + 5,
        "sustained load must heat the junction: {t0} -> {t1}"
    );
    // Idle cools back down.
    gpu.lock().advance_idle(SimDuration::from_secs(200));
    let t2 = dev.temperature(TemperatureSensor::Gpu).expect("temp");
    assert!(t2 < t1, "idle must cool: {t1} -> {t2}");
}

#[test]
fn memory_clock_control_through_nvml() {
    let gpu = Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_sxm4_80gb())));
    let nvml = Nvml::init(vec![Arc::clone(&gpu)]);
    let dev = nvml.device_by_index(0).expect("device");
    assert_eq!(
        dev.supported_memory_clocks().expect("list"),
        vec![1593, 1215, 810]
    );
    // Set a lower memory P-state along with the compute clock.
    dev.set_applications_clocks(810, 1410)
        .expect("supported pair");
    assert_eq!(
        dev.clock_info(gpu_freq_scaling::nvml_shim::ClockType::Mem)
            .expect("mem"),
        810
    );
    // Unsupported memory clock rejected.
    assert!(dev.set_applications_clocks(1000, 1410).is_err());
    // A memory-bound kernel runs slower at the low P-state.
    let w = KernelWorkload::new("XMass", 1e9, 50e9).with_activity(0.3, 0.9);
    let slow = gpu.lock().run_region(&w).duration();
    dev.set_applications_clocks(1593, 1410).expect("restore");
    let fast = gpu.lock().run_region(&w).duration();
    assert!(
        slow > fast.mul_f64(1.5),
        "810 MHz HBM must hurt: {slow} vs {fast}"
    );
}

#[test]
fn autotune_policy_runs_through_the_full_experiment_runner() {
    let base = run_experiment(&quick_spec(FreqPolicy::Baseline));
    let mut spec = quick_spec(FreqPolicy::auto_tune_default(&GpuSpec::a100_pcie_40gb()));
    spec.steps = 14; // warm-up (10 calls) + steady state
    let auto = run_experiment(&spec);
    assert_eq!(auto.policy, "autotune");
    // Steady state reaches a per-function split: MomentumEnergy's average
    // clock ends above XMass's.
    let agg = auto.functions_all_ranks();
    assert!(
        agg["MomentumEnergy"].avg_freq_mhz > agg["XMass"].avg_freq_mhz + 50.0,
        "MomentumEnergy {} vs XMass {}",
        agg["MomentumEnergy"].avg_freq_mhz,
        agg["XMass"].avg_freq_mhz
    );
    let _ = base;
}

#[test]
fn pareto_front_over_real_policies() {
    let base = run_experiment(&quick_spec(FreqPolicy::Baseline));
    let dvfs = run_experiment(&quick_spec(FreqPolicy::Dvfs));
    let low = run_experiment(&quick_spec(FreqPolicy::Static(MegaHertz(1005))));
    let points = vec![
        PolicyPoint::from_result(&base),
        PolicyPoint::from_result(&dvfs),
        PolicyPoint::from_result(&low),
    ];
    let front = pareto_front(&points);
    let labels: Vec<&str> = front.iter().map(|&i| points[i].label.as_str()).collect();
    assert!(
        labels.contains(&"baseline"),
        "fastest point is on the front"
    );
    assert!(
        labels.contains(&"static-1005"),
        "cheapest point is on the front"
    );
    assert!(
        !labels.contains(&"dvfs"),
        "DVFS (slower AND hungrier) is dominated"
    );
}

#[test]
fn comm_stats_accumulate_during_a_simulation() {
    let stats = run(4, CommCost::default(), |ctx| {
        let ic = gpu_freq_scaling::sph::subsonic_turbulence(8, 0.3, 5);
        let mut sim = gpu_freq_scaling::sph::Simulation::distribute(
            ic,
            gpu_freq_scaling::sph::SimConfig {
                target_neighbors: 30,
                ..Default::default()
            },
            ctx.rank(),
            ctx.size(),
        );
        sim.step(ctx, &mut gpu_freq_scaling::sph::NullObserver);
        sim.step(ctx, &mut gpu_freq_scaling::sph::NullObserver);
        ctx.comm_stats()
    });
    for s in &stats {
        assert!(
            s.collectives >= 8,
            "keys/boxes/dt/budget collectives: {s:?}"
        );
        assert!(s.sends >= 6, "migration + halo messages per step: {s:?}");
        assert_eq!(s.sends, s.recvs, "exchange pattern is symmetric");
        assert!(s.collective_bytes > 0 && s.send_bytes > 0);
    }
    // Sanity: an allreduce still works after a full sim (runtime healthy).
    let ok = run(2, CommCost::free(), |ctx| ctx.allreduce_f64(1.0, Op::Sum));
    assert_eq!(ok, vec![2.0, 2.0]);
}
