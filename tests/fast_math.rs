//! Conservation gates for the `fast-math` feature.
//!
//! `fast-math` relaxes bit-identity of the blocked sweeps (lane-partial
//! reductions, polynomial sinc for `Sinc5`) but must not relax the physics:
//! mass, momentum and energy over a multi-step Evrard collapse stay within
//! the same tolerances the exact path holds. These tests only exist in
//! `--features fast-math` builds; the default build pins bit-identity
//! instead (see `parallel_determinism.rs`).

#![cfg(feature = "fast-math")]

use gpu_freq_scaling::ranks::{run, CommCost};
use gpu_freq_scaling::sph::{
    evrard, Kernel, NeighborPath, NullObserver, SimConfig, Simulation, StepStats,
};

fn collapse(kernel: Kernel, steps: usize) -> (Vec<StepStats>, f64, f64) {
    run(1, CommCost::default(), move |ctx| {
        let cfg = SimConfig {
            kernel,
            target_particles_per_rank: 1e6,
            target_neighbors: 40,
            bucket_size: 32,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(evrard(10), cfg);
        sim.neighbor_path = NeighborPath::SharedList; // the blocked (fast) path
        let mass0: f64 = sim.parts.m[..sim.parts.n_local].iter().sum();
        let stats: Vec<StepStats> = (0..steps)
            .map(|_| sim.step(ctx, &mut NullObserver))
            .collect();
        let mass1: f64 = sim.parts.m[..sim.parts.n_local].iter().sum();
        (stats, mass0, mass1)
    })
    .remove(0)
}

#[test]
fn fast_math_conserves_mass_energy_momentum_over_evrard() {
    for kernel in [Kernel::Sinc5, Kernel::CubicSpline] {
        let (stats, mass0, mass1) = collapse(kernel, 10);
        assert!(
            ((mass1 - mass0) / mass0).abs() < 1e-12,
            "{kernel:?}: mass drifted {mass0} -> {mass1}"
        );
        let first = stats.first().expect("steps").budget;
        let last = stats.last().expect("steps").budget;
        // Energy drift within the same band physics_validation.rs grants
        // the exact path over a comparable run.
        let drift = (last.total() - first.total()).abs() / first.total().abs();
        assert!(drift < 0.08, "{kernel:?}: energy drift {drift}");
        // The gas starts at rest: net momentum must stay tiny relative to
        // the momentum scale the infall builds up.
        let scale = (2.0 * last.kinetic * mass1).sqrt().max(1e-30);
        for (axis, p) in [("px", last.px), ("py", last.py), ("pz", last.pz)] {
            assert!(
                p.abs() < 1e-6 * scale,
                "{kernel:?}: {axis} = {p} vs scale {scale}"
            );
        }
        // And the run must still be a collapse, not noise: the well deepens
        // and the gas picks up kinetic energy.
        assert!(last.potential < first.potential, "{kernel:?}: no infall");
        assert!(last.kinetic > first.kinetic, "{kernel:?}: no acceleration");
    }
}
