//! Determinism guard for the fault injector: the injected-fault schedule is
//! part of an experiment's reproducibility contract, so the same seed and
//! profile must produce a byte-identical schedule no matter how many worker
//! threads draw it (mirroring `tests/parallel_determinism.rs` for physics).
//!
//! The injector earns this with stateless draws — each decision hashes
//! `(seed, channel, device, n)` where `n` is the `(channel, device)` pair's
//! own counter — so thread interleaving between devices cannot shift any
//! device's sequence.

#![cfg(feature = "faults")]

use std::sync::Mutex;

use faults::{FaultInjector, FaultProfile, SampleFault};

/// Serializes tests that toggle the process-wide thread-count override.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

const DEVICES: usize = 4;
const DRAWS_PER_CHANNEL: usize = 256;

/// A profile with every probabilistic channel enabled, so the schedule
/// exercises all draw paths.
fn all_channels_profile(seed: u64) -> FaultProfile {
    FaultProfile {
        seed,
        straggler_stall: 0.2,
        ..FaultProfile::chaos()
    }
}

/// Drain one device's decision stream into bytes: every channel, in a fixed
/// interleaved order, `DRAWS_PER_CHANNEL` rounds.
fn drain_device(dev: &faults::DeviceFaults) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 * DRAWS_PER_CHANNEL);
    for _ in 0..DRAWS_PER_CHANNEL {
        out.push(u8::from(dev.clock_set_rejects()));
        out.push(dev.clock_clamp_rungs() as u8);
        out.push(match dev.sample_fault() {
            SampleFault::None => 0,
            SampleFault::Dropped => 1,
            SampleFault::Duplicated => 2,
        });
        out.push(u8::from(dev.thermal_throttle()));
        out.push(u8::from(dev.straggler_stall()));
    }
    out
}

/// The full multi-device schedule drawn with `threads` workers: one handle
/// per device, drained inside `par::par_map` exactly the way ranks consume
/// their handles in a run.
fn schedule_at(threads: usize, seed: u64) -> Vec<Vec<u8>> {
    par::set_max_threads(threads);
    let inj = FaultInjector::new(all_channels_profile(seed));
    assert!(inj.is_active());
    let schedule = par::par_map(DEVICES, |dev| drain_device(&inj.device(dev as u64)));
    par::set_max_threads(0);
    schedule
}

#[test]
fn schedule_is_byte_identical_across_worker_counts() {
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    let serial = schedule_at(1, 0xFA17);
    let parallel = schedule_at(4, 0xFA17);
    assert_eq!(serial.len(), DEVICES);
    assert!(serial.iter().all(|s| s.len() == 5 * DRAWS_PER_CHANNEL));
    assert_eq!(
        serial, parallel,
        "fault schedule must be byte-identical at 1 vs 4 workers"
    );
    // The schedule is non-trivial (some channel fired somewhere) and distinct
    // devices see distinct sequences — identical output is not "all zeros".
    assert!(serial.iter().flatten().any(|&b| b != 0));
    assert_ne!(serial[0], serial[1]);
}

#[test]
fn replays_share_a_seed_and_diverge_across_seeds() {
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    assert_eq!(
        schedule_at(4, 7),
        schedule_at(4, 7),
        "same seed+profile must replay the exact schedule"
    );
    assert_ne!(
        schedule_at(4, 7),
        schedule_at(4, 8),
        "different seeds must produce different schedules"
    );
}
