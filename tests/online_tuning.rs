//! Acceptance tests for the online ManDyn subsystem (`crates/online`):
//! in-run convergence against the offline KernelTuner table, warm-starting
//! from the table store, energy parity with offline ManDyn, and power-cap
//! enforcement in the measured trace.

use gpu_freq_scaling::archsim::{GpuSpec, MegaHertz};
use gpu_freq_scaling::freqscale::{
    compare_tables, learned_table_of, max_deviation_mhz, run_experiment, tables_within_bin,
    tune_table, ExperimentSpec, FreqPolicy, FreqTable, WorkloadKind,
};
use gpu_freq_scaling::online::OnlineTunerConfig;
use gpu_freq_scaling::tuner::Objective;

/// One 15 MHz ladder bin — the paper's clock granularity (§III-C).
const BIN_MHZ: u32 = 15;

fn online_spec(steps: usize) -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(
        FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        steps,
    );
    spec.workload = WorkloadKind::Turbulence {
        n_side: 6,
        mach: 0.3,
        seed: 9,
    };
    spec.target_neighbors = 30;
    spec
}

fn offline_table() -> FreqTable {
    // The §III-C reference: 450³ particles, best EDP, 1005–1410 MHz sweep,
    // no gravity (turbulence kernel set).
    tune_table(
        &GpuSpec::a100_pcie_40gb(),
        450.0f64.powi(3),
        MegaHertz(1005),
        MegaHertz(1410),
        Objective::Edp,
        false,
    )
    .0
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("online-tuning-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn online_table_converges_to_the_offline_table_within_one_bin() {
    let reference = offline_table();
    let r = run_experiment(&online_spec(70));
    let learned = learned_table_of(&r);
    assert_eq!(
        learned.len(),
        reference.len(),
        "every turbulence kernel must pin: {learned:?}"
    );
    let devs = compare_tables(&learned, &reference, MegaHertz(1410));
    assert!(
        tables_within_bin(&devs, BIN_MHZ),
        "online table must agree with the offline sweep within one bin; \
         max deviation {} MHz: {devs:?}",
        max_deviation_mhz(&devs)
    );
}

#[test]
fn warm_started_run_spends_no_exploration_launches() {
    let dir = tmpdir("warm");
    let mut cold = online_spec(70);
    cold.table_store = Some(dir.clone());
    let first = run_experiment(&cold);
    let learned = learned_table_of(&first);
    assert!(!learned.is_empty(), "cold run must learn a table");
    assert!(
        first.per_rank[0].exploration_launches > 0,
        "cold run must explore"
    );

    // Second run, same (GPU, workload): warm-start pins everything up front.
    let mut warm = online_spec(4);
    warm.table_store = Some(dir.clone());
    let second = run_experiment(&warm);
    assert_eq!(
        second.per_rank[0].exploration_launches, 0,
        "warm-started run must spend zero launches exploring"
    );
    assert_eq!(
        learned_table_of(&second),
        learned,
        "warm-started run runs the stored table"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn online_energy_saving_is_within_1p5_points_of_offline_mandyn() {
    let steps = 70;
    let mut base_spec = online_spec(steps);
    base_spec.policy = FreqPolicy::Baseline;
    let base = run_experiment(&base_spec);

    let mut mandyn_spec = online_spec(steps);
    mandyn_spec.policy = FreqPolicy::ManDyn(offline_table());
    let mandyn = run_experiment(&mandyn_spec);

    let online = run_experiment(&online_spec(steps));

    let saving =
        |r: &gpu_freq_scaling::freqscale::ExperimentResult| 1.0 - r.pmt_gpu_j / base.pmt_gpu_j;
    let offline_saving = saving(&mandyn);
    let online_saving = saving(&online);
    assert!(
        offline_saving > 0.02,
        "offline ManDyn must save GPU energy: {offline_saving}"
    );
    assert!(
        (online_saving - offline_saving).abs() <= 0.015,
        "online saving {online_saving:.4} must sit within 1.5pp of offline {offline_saving:.4}"
    );
}

#[test]
fn power_capped_run_never_exceeds_the_budget_in_the_trace() {
    let gpu = GpuSpec::a100_pcie_40gb();
    let budget_w = 0.72 * gpu.tdp().0;

    let mut spec = online_spec(12);
    spec.collect_trace = true;
    spec.power_cap_w = Some(budget_w);
    let capped = run_experiment(&spec);
    let trace = &capped.per_rank[0].power_trace;
    assert!(!trace.is_empty(), "collect_trace must record power samples");
    let peak = trace.iter().map(|(_, w)| *w).fold(0.0, f64::max);
    assert!(
        peak <= budget_w + 1e-6,
        "trace peak {peak:.1} W must stay under the {budget_w:.1} W budget"
    );

    // And the cap actually binds: uncapped, the same run draws more.
    let mut free = online_spec(12);
    free.collect_trace = true;
    let uncapped = run_experiment(&free);
    let free_peak = uncapped.per_rank[0]
        .power_trace
        .iter()
        .map(|(_, w)| *w)
        .fold(0.0, f64::max);
    assert!(
        free_peak > budget_w,
        "budget must be binding for the test to mean anything: \
         uncapped peak {free_peak:.1} W vs budget {budget_w:.1} W"
    );
}

#[test]
fn power_cap_composes_with_offline_mandyn() {
    let gpu = GpuSpec::a100_pcie_40gb();
    let budget_w = 0.75 * gpu.tdp().0;
    let mut spec = online_spec(8);
    spec.policy = FreqPolicy::ManDyn(offline_table());
    spec.collect_trace = true;
    spec.power_cap_w = Some(budget_w);
    let r = run_experiment(&spec);
    let peak = r.per_rank[0]
        .power_trace
        .iter()
        .map(|(_, w)| *w)
        .fold(0.0, f64::max);
    assert!(peak > 0.0, "trace recorded");
    assert!(
        peak <= budget_w + 1e-6,
        "ManDyn under a cap: peak {peak:.1} W vs budget {budget_w:.1} W"
    );
}
