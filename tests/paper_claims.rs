//! The paper's quantitative claims, asserted as shape tests: who wins, by
//! roughly what factor, where the crossovers fall (§IV).

use gpu_freq_scaling::archsim::{GpuSpec, MegaHertz, SimDuration};
use gpu_freq_scaling::freqscale::{
    policy::tune_table, run_experiment, ExperimentResult, ExperimentSpec, FreqPolicy, WorkloadKind,
};
use gpu_freq_scaling::sph::FuncId;
use gpu_freq_scaling::tuner::Objective;

fn run(policy: FreqPolicy, target: f64) -> ExperimentResult {
    let mut spec = ExperimentSpec::minihpc_turbulence(policy, 4);
    spec.workload = WorkloadKind::Turbulence {
        n_side: 8,
        mach: 0.3,
        seed: 42,
    };
    spec.target_particles_per_rank = target;
    spec.target_neighbors = 30;
    run_experiment(&spec)
}

fn n450() -> f64 {
    450.0f64.powi(3)
}

#[test]
fn claim_mandyn_saves_energy_with_bounded_performance_loss() {
    // Headline: up to 7.82% energy saving per GPU, <= 2.95% time loss.
    let base = run(FreqPolicy::Baseline, n450());
    let table = tune_table(
        &GpuSpec::a100_pcie_40gb(),
        n450(),
        MegaHertz(1005),
        MegaHertz(1410),
        Objective::Edp,
        false,
    )
    .0;
    let mandyn = run(FreqPolicy::ManDyn(table), n450());
    let (t, e, edp) = mandyn.normalized_to(&base);
    assert!(t < 1.05, "ManDyn time loss must stay small: {t}");
    assert!(t > 1.0, "some loss is expected");
    assert!(
        (0.86..=0.96).contains(&e),
        "ManDyn energy saving out of the paper's ballpark: {e}"
    );
    assert!(edp < 0.98, "ManDyn must improve EDP: {edp}");
}

#[test]
fn claim_mandyn_beats_static_1005_on_both_time_and_edp() {
    // §IV-D: "16% decrease in time-to-solution" vs static-1005 and a lower
    // EDP than static-1005's ~2.5% improvement.
    let base = run(FreqPolicy::Baseline, n450());
    let table = tune_table(
        &GpuSpec::a100_pcie_40gb(),
        n450(),
        MegaHertz(1005),
        MegaHertz(1410),
        Objective::Edp,
        false,
    )
    .0;
    let mandyn = run(FreqPolicy::ManDyn(table), n450());
    let s1005 = run(FreqPolicy::Static(MegaHertz(1005)), n450());
    let (t_m, _, edp_m) = mandyn.normalized_to(&base);
    let (t_s, e_s, edp_s) = s1005.normalized_to(&base);
    assert!(t_m < t_s - 0.03, "ManDyn clearly faster: {t_m} vs {t_s}");
    assert!(
        edp_m < edp_s,
        "ManDyn EDP {edp_m} must beat static-1005 {edp_s}"
    );
    assert!(t_s > 1.08, "static-1005 pays a real time penalty: {t_s}");
    assert!(e_s < 0.90, "static-1005 saves real energy: {e_s}");
}

#[test]
fn claim_dvfs_matches_time_but_costs_energy() {
    // §IV-D: DVFS time ~ baseline, energy above baseline.
    let base = run(FreqPolicy::Baseline, n450());
    let dvfs = run(FreqPolicy::Dvfs, n450());
    let (t, e, _) = dvfs.normalized_to(&base);
    assert!(
        (0.98..=1.05).contains(&t),
        "DVFS time should track baseline: {t}"
    );
    assert!(e > 1.0, "DVFS must cost energy vs pinned baseline: {e}");
    assert!(e < 1.10, "but not absurdly so: {e}");
}

#[test]
fn claim_static_downscaling_reduces_edp_despite_slowdown() {
    // Fig. 6 at full utilization: EDP decreases as frequency drops.
    let base = run(FreqPolicy::Baseline, n450());
    let mut last_edp = 1.0;
    for f in [1305u32, 1200, 1110] {
        let r = run(FreqPolicy::Static(MegaHertz(f)), n450());
        let (t, _, edp) = r.normalized_to(&base);
        assert!(t > 1.0, "{f} MHz must be slower");
        assert!(
            edp < last_edp,
            "EDP must keep dropping at {f} MHz: {edp} vs {last_edp}"
        );
        last_edp = edp;
    }
}

#[test]
fn claim_underutilized_gpus_gain_more_from_downscaling() {
    // Fig. 6: the 200^3 case drops much further than 450^3.
    let n_small = 200.0f64.powi(3);
    let base_big = run(FreqPolicy::Baseline, n450());
    let base_small = run(FreqPolicy::Baseline, n_small);
    let low_big = run(FreqPolicy::Static(MegaHertz(1005)), n450());
    let low_small = run(FreqPolicy::Static(MegaHertz(1005)), n_small);
    let (_, _, edp_big) = low_big.normalized_to(&base_big);
    let (t_small, _, edp_small) = low_small.normalized_to(&base_small);
    assert!(
        edp_small < edp_big - 0.02,
        "under-utilized EDP gain must be larger: {edp_small} vs {edp_big}"
    );
    assert!(
        t_small < 1.08,
        "under-utilized GPU barely slows down: {t_small}"
    );
}

#[test]
fn claim_tuned_frequencies_split_by_compute_intensity() {
    // Fig. 2: MomentumEnergy/IAD high, XMass/NormalizationGradh at the floor.
    let (table, _) = tune_table(
        &GpuSpec::a100_pcie_40gb(),
        n450(),
        MegaHertz(1005),
        MegaHertz(1410),
        Objective::Edp,
        false,
    );
    assert!(table[&FuncId::MomentumEnergy] >= MegaHertz(1300));
    assert!(table[&FuncId::IADVelocityDivCurl] >= MegaHertz(1300));
    assert!(table[&FuncId::XMass] <= MegaHertz(1110));
    assert!(table[&FuncId::NormalizationGradh] <= MegaHertz(1110));
    assert!(table[&FuncId::UpdateQuantities] <= MegaHertz(1110));
}

#[test]
fn claim_governor_trace_matches_fig9_pattern() {
    let mut spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Dvfs, 4);
    spec.workload = WorkloadKind::Turbulence {
        n_side: 8,
        mach: 0.3,
        seed: 42,
    };
    spec.target_particles_per_rank = n450();
    spec.target_neighbors = 30;
    spec.collect_trace = true;
    let r = run_experiment(&spec);
    let agg = r.functions_all_ranks();
    // MomentumEnergy climbs to (nearly) the max clock.
    assert!(agg["MomentumEnergy"].avg_freq_mhz > 1380.0);
    // IAD above 1350, per §IV-E.
    assert!(agg["IADVelocityDivCurl"].avg_freq_mhz > 1340.0);
    // The lightweight launch stream sits well below, around 1200.
    let dd = agg["DomainDecompAndSync"].avg_freq_mhz;
    assert!((1100.0..1330.0).contains(&dd), "DomainDecomp at {dd}");
    // Communication dips below 1000 MHz somewhere in the trace.
    let trace = &r.per_rank[0].freq_trace;
    assert!(!trace.is_empty());
    let min = trace
        .iter()
        .map(|(_, f)| *f)
        .min()
        .expect("non-empty trace");
    assert!(min < 1000, "end-of-step dip missing: min {min}");
    let max = trace
        .iter()
        .map(|(_, f)| *f)
        .max()
        .expect("non-empty trace");
    assert_eq!(max, 1410, "boost must reach the top clock");
}

#[test]
fn claim_slurm_pmt_gap_is_setup_energy() {
    // Fig. 3: the PMT-vs-Slurm difference comes from the setup phase (plus
    // the auxiliary draw PMT cannot see). Doubling setup time must widen the
    // gap by exactly the extra setup energy, not affect the loop numbers.
    let mut spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 3);
    spec.workload = WorkloadKind::Turbulence {
        n_side: 8,
        mach: 0.3,
        seed: 42,
    };
    spec.target_neighbors = 30;
    spec.setup = SimDuration::from_secs(1);
    let short = run_experiment(&spec);
    spec.setup = SimDuration::from_secs(3);
    let long = run_experiment(&spec);
    assert!(
        (short.pmt_total_j - long.pmt_total_j).abs() / short.pmt_total_j < 0.01,
        "PMT (loop-scoped) must not see setup"
    );
    assert!(
        long.slurm_consumed_j > short.slurm_consumed_j + 10.0,
        "Slurm must charge the longer setup"
    );
}
