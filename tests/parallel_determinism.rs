//! Determinism guard for the `parallel` feature: thread count must not
//! change a single bit of physics output or a single tuned frequency.
//!
//! Every parallel loop in the workspace uses the gather pattern (map into
//! per-index slots, fold serially), so 1-thread and N-thread runs are
//! required to be *bit-identical* — not merely close. These tests pin that
//! contract end to end: a gravity workload step and a full tuner sweep.

use std::sync::Mutex;

use freqscale::tune_table;
use ranks::CommCost;
use sph::{
    evrard, Kernel, NeighborPath, NullObserver, Particles, SimConfig, Simulation, StepStats,
};
use tuner::Objective;

/// Serializes tests that toggle the process-wide thread-count override.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

/// Bit-exact snapshot of every owned-particle field.
fn snapshot(parts: &Particles) -> Vec<u64> {
    let n = parts.n_local;
    let fields: [&[f64]; 26] = [
        &parts.x,
        &parts.y,
        &parts.z,
        &parts.vx,
        &parts.vy,
        &parts.vz,
        &parts.m,
        &parts.h,
        &parts.rho,
        &parts.p,
        &parts.c,
        &parts.u,
        &parts.du,
        &parts.ax,
        &parts.ay,
        &parts.az,
        &parts.gradh,
        &parts.xmass,
        &parts.divv,
        &parts.curlv,
        &parts.alpha,
        &parts.c11,
        &parts.c12,
        &parts.c13,
        &parts.c22,
        &parts.c23,
    ];
    let mut out = Vec::with_capacity(27 * n);
    for f in fields {
        out.extend(f[..n].iter().map(|v| v.to_bits()));
    }
    out.extend(parts.c33[..n].iter().map(|v| v.to_bits()));
    out
}

/// One Evrard step (gravity exercises the Barnes-Hut build + walk on top of
/// the SPH loops) at the given worker count, through the given neighbor path.
fn evrard_step_at(threads: usize, path: NeighborPath) -> (Vec<u64>, StepStats) {
    par::set_max_threads(threads);
    let out = ranks::run(1, CommCost::default(), |ctx| {
        let cfg = SimConfig {
            kernel: Kernel::CubicSpline,
            target_particles_per_rank: 1e6,
            target_neighbors: 40,
            bucket_size: 32,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(evrard(8), cfg);
        sim.neighbor_path = path;
        let stats = sim.step(ctx, &mut NullObserver);
        (snapshot(&sim.parts), stats)
    })
    .remove(0);
    par::set_max_threads(0);
    out
}

/// A multi-step Evrard run (5 steps: h adapts, halos refresh, the neighbor
/// list is rebuilt in place each step) through the given neighbor path.
fn evrard_run_via(path: NeighborPath, kernel: Kernel) -> (Vec<u64>, Vec<StepStats>) {
    ranks::run(1, CommCost::default(), |ctx| {
        let cfg = SimConfig {
            kernel,
            target_particles_per_rank: 1e6,
            target_neighbors: 40,
            bucket_size: 32,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(evrard(8), cfg);
        sim.neighbor_path = path;
        let stats: Vec<StepStats> = (0..5).map(|_| sim.step(ctx, &mut NullObserver)).collect();
        (snapshot(&sim.parts), stats)
    })
    .remove(0)
}

/// A full per-function frequency sweep at the given worker count. Frequencies
/// and the raw EDP measurements are both captured.
fn sweep_at(threads: usize) -> Vec<(String, u32, Vec<u64>)> {
    par::set_max_threads(threads);
    let gpu = archsim::GpuSpec::a100_pcie_40gb();
    let (table, detail) = tune_table(
        &gpu,
        1e6,
        archsim::MegaHertz(1005),
        archsim::MegaHertz(1410),
        Objective::Edp,
        true,
    );
    par::set_max_threads(0);
    detail
        .into_iter()
        .map(|(func, result)| {
            let pinned = table[&func];
            assert_eq!(result.best_frequency(), Some(pinned), "table/detail agree");
            let edp_bits = result.configs.iter().map(|c| c.edp.to_bits()).collect();
            (func.name().to_string(), pinned.0, edp_bits)
        })
        .collect()
}

#[test]
fn evrard_step_is_bit_identical_across_thread_counts() {
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    let (state_1t, stats_1t) = evrard_step_at(1, NeighborPath::SharedList);
    let (state_4t, stats_4t) = evrard_step_at(4, NeighborPath::SharedList);
    assert!(!state_1t.is_empty());
    assert_eq!(
        state_1t, state_4t,
        "particle state must be bit-identical at 1 vs 4 threads"
    );
    assert_eq!(stats_1t.dt.to_bits(), stats_4t.dt.to_bits());
    assert_eq!(
        stats_1t.budget.potential.to_bits(),
        stats_4t.budget.potential.to_bits(),
        "gravity potential fold must be thread-count invariant"
    );
    assert_eq!(
        stats_1t.budget.kinetic.to_bits(),
        stats_4t.budget.kinetic.to_bits()
    );
}

#[test]
fn cell_grid_path_is_bit_identical_across_thread_counts() {
    // The baseline path must stay as deterministic as the shared-list one —
    // bench_neighbors relies on it being the pre-change code, unchanged.
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    let (state_1t, stats_1t) = evrard_step_at(1, NeighborPath::CellGrid);
    let (state_4t, stats_4t) = evrard_step_at(4, NeighborPath::CellGrid);
    assert_eq!(state_1t, state_4t);
    assert_eq!(stats_1t.dt.to_bits(), stats_4t.dt.to_bits());
}

/// The tentpole guarantee (default features only — `fast-math` explicitly
/// relaxes it): a full Evrard run through the shared CSR NeighborList with
/// the cache-blocked sweep engine produces the same bits — particle state
/// and every reported stat — as the per-sweep grid walk with the scalar
/// callbacks. Everything an experiment report derives from the physics
/// (ManDyn rung measurements, EDP scores, energy budgets) is a function of
/// this state plus path-independent workload descriptors, so report
/// equality follows.
#[cfg(not(feature = "fast-math"))]
fn assert_paths_agree(kernel: Kernel) {
    let (state_grid, stats_grid) = evrard_run_via(NeighborPath::CellGrid, kernel);
    let (state_list, stats_list) = evrard_run_via(NeighborPath::SharedList, kernel);
    assert!(!state_grid.is_empty());
    assert_eq!(
        state_grid, state_list,
        "{kernel:?}: five-sweep step must not change a single bit when sweeps replay the shared list"
    );
    assert_eq!(stats_grid.len(), stats_list.len());
    for (g, l) in stats_grid.iter().zip(&stats_list) {
        assert_eq!(g.step, l.step);
        assert_eq!(g.dt.to_bits(), l.dt.to_bits());
        assert_eq!(g.time.to_bits(), l.time.to_bits());
        assert_eq!(g.n_local, l.n_local);
        assert_eq!(g.n_halo, l.n_halo);
        for (a, b) in g.budget.to_slice().iter().zip(l.budget.to_slice().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "budget fields must match bitwise");
        }
    }
}

#[cfg(not(feature = "fast-math"))]
#[test]
fn shared_list_path_is_bit_identical_to_cell_grid_path() {
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    assert_paths_agree(Kernel::CubicSpline);
}

#[cfg(not(feature = "fast-math"))]
#[test]
fn shared_list_path_is_bit_identical_for_sinc5() {
    // Sinc5 is the kernel fast-math actually replaces — pin that with the
    // feature OFF its blocked path (fused sinc_dsinc, lane buffers) is
    // still exact to the bit.
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    assert_paths_agree(Kernel::Sinc5);
}

#[cfg(feature = "fast-math")]
#[test]
fn fast_math_shared_list_stays_thread_count_invariant_over_a_run() {
    // fast-math gives up grid-vs-list bit-identity, NOT determinism: the
    // lane-partial reductions depend only on each row's term sequence, so a
    // multi-step run must still be bit-identical across worker counts.
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    par::set_max_threads(1);
    let (state_1t, _) = evrard_run_via(NeighborPath::SharedList, Kernel::Sinc5);
    par::set_max_threads(4);
    let (state_4t, _) = evrard_run_via(NeighborPath::SharedList, Kernel::Sinc5);
    par::set_max_threads(0);
    assert!(!state_1t.is_empty());
    assert_eq!(state_1t, state_4t);
}

#[test]
fn tuner_sweep_produces_identical_sweet_spot_tables() {
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    let serial = sweep_at(1);
    let parallel = sweep_at(4);
    assert_eq!(serial.len(), 12, "all instrumented functions swept");
    assert_eq!(
        serial, parallel,
        "sweep order, sweet spots and raw EDP bits must match"
    );
}
