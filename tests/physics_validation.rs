//! Physics validation across crates: the simulation substrate must be real
//! physics, not a timing skeleton — these tests check it against known
//! solutions and invariants at laptop scale.

use gpu_freq_scaling::ranks::{run, CommCost};
use gpu_freq_scaling::sph::{
    evrard, kelvin_helmholtz, plummer, rotating_disk, sedov, sod, subsonic_turbulence, Kernel,
    NBody, NullObserver, SimConfig, Simulation,
};

fn cfg(neighbors: usize) -> SimConfig {
    SimConfig {
        kernel: Kernel::CubicSpline,
        target_particles_per_rank: 1e6,
        target_neighbors: neighbors,
        bucket_size: 32,
        ..SimConfig::default()
    }
}

/// Energy-weighted radius of the hot material — tracks the Sedov front.
fn hot_radius(parts: &gpu_freq_scaling::sph::Particles) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..parts.n_local {
        let r =
            ((parts.x[i] - 0.5).powi(2) + (parts.y[i] - 0.5).powi(2) + (parts.z[i] - 0.5).powi(2))
                .sqrt();
        let e = parts.m[i] * parts.u[i];
        num += e * r;
        den += e;
    }
    num / den
}

#[test]
fn sedov_front_grows_sublinearly_like_the_self_similar_solution() {
    // r_s(t) ~ t^(2/5): the growth must decelerate — each doubling of time
    // grows the radius by clearly less than 2x. At 12^3 resolution we check
    // the qualitative exponent band rather than the 0.4 literal.
    let samples = run(1, CommCost::default(), |ctx| {
        let ic = sedov(12, 1.0);
        let mut sim = Simulation::new(ic, cfg(40));
        let mut out = Vec::new();
        for _ in 0..12 {
            sim.step(ctx, &mut NullObserver);
            out.push((sim.time(), hot_radius(&sim.parts)));
        }
        out
    })
    .remove(0);
    let (t0, r0) = samples[2];
    let (t1, r1) = *samples.last().expect("steps ran");
    assert!(t1 > t0 * 1.5, "enough dynamic range: {t0} .. {t1}");
    assert!(r1 > r0, "front must expand: {r0} -> {r1}");
    let exponent = (r1 / r0).ln() / (t1 / t0).ln();
    assert!(
        (0.05..0.9).contains(&exponent),
        "growth exponent {exponent} outside the decelerating-blast band"
    );
}

#[test]
fn evrard_collapse_converts_potential_to_kinetic_then_heats() {
    let stats = run(1, CommCost::default(), |ctx| {
        let ic = evrard(12);
        let mut sim = Simulation::new(ic, cfg(40));
        let mut out = Vec::new();
        for _ in 0..12 {
            out.push(sim.step(ctx, &mut NullObserver));
        }
        out
    })
    .remove(0);
    let first = stats.first().expect("steps").budget;
    let last = stats.last().expect("steps").budget;
    // Infall: well deepens, kinetic rises, gas compresses and heats.
    assert!(last.potential < first.potential);
    assert!(
        last.kinetic > first.kinetic * 2.0,
        "{} -> {}",
        first.kinetic,
        last.kinetic
    );
    assert!(last.internal > first.internal);
    // Total energy conserved to a few percent over the run.
    let drift = (last.total() - first.total()).abs() / first.total().abs();
    assert!(drift < 0.08, "energy drift {drift}");
}

#[test]
fn turbulence_is_statistically_isotropic() {
    // The solenoidal IC has no preferred axis: the three kinetic-energy
    // components stay comparable while the cascade decays.
    let (ex, ey, ez) = run(1, CommCost::default(), |ctx| {
        let ic = subsonic_turbulence(10, 0.4, 77);
        let mut sim = Simulation::new(ic, cfg(40));
        for _ in 0..6 {
            sim.step(ctx, &mut NullObserver);
        }
        let p = &sim.parts;
        let mut e = [0.0f64; 3];
        for i in 0..p.n_local {
            e[0] += p.m[i] * p.vx[i] * p.vx[i];
            e[1] += p.m[i] * p.vy[i] * p.vy[i];
            e[2] += p.m[i] * p.vz[i] * p.vz[i];
        }
        (e[0], e[1], e[2])
    })
    .remove(0);
    let total = ex + ey + ez;
    for (axis, e) in [("x", ex), ("y", ey), ("z", ez)] {
        let share = e / total;
        assert!(
            (0.1..0.65).contains(&share),
            "axis {axis} holds {share} of kinetic energy — anisotropic"
        );
    }
}

#[test]
fn kelvin_helmholtz_amplifies_the_seed_while_conserving_x_momentum() {
    // The shear layer feeds the seeded transverse mode: the y-kinetic energy
    // must grow from its tiny seed value, while the net x-momentum (nonzero:
    // the dense band outweighs the ambient counterflow) is conserved — the
    // instability redistributes momentum, it does not create any.
    let (ey0, ey1, px0, px1) = run(1, CommCost::default(), |ctx| {
        let ic = kelvin_helmholtz(12, 42);
        let mut sim = Simulation::new(ic, cfg(40));
        let measure = |p: &gpu_freq_scaling::sph::Particles| {
            let mut ey = 0.0;
            let mut px = 0.0;
            for i in 0..p.n_local {
                ey += 0.5 * p.m[i] * p.vy[i] * p.vy[i];
                px += p.m[i] * p.vx[i];
            }
            (ey, px)
        };
        let (ey0, px0) = measure(&sim.parts);
        for _ in 0..10 {
            sim.step(ctx, &mut NullObserver);
        }
        let (ey1, px1) = measure(&sim.parts);
        (ey0, ey1, px0, px1)
    })
    .remove(0);
    assert!(ey0 > 0.0, "the IC must carry a transverse seed");
    assert!(
        ey1 > ey0 * 1.2,
        "transverse kinetic energy must grow off the seed: {ey0} -> {ey1}"
    );
    assert!(px0.abs() > 1e-3, "band/ambient mass contrast gives net px");
    let drift = (px1 - px0).abs() / px0.abs();
    assert!(drift < 0.05, "x-momentum drift {drift}: {px0} -> {px1}");
}

#[test]
fn rotating_disk_conserves_angular_momentum_and_stays_a_disk() {
    // Rotation support: L_z is conserved by the axisymmetric gravity +
    // pressure forces, the mass-weighted cylindrical radius stays put (no
    // collapse, no fly-apart), and the energy budget closes.
    let out = run(1, CommCost::default(), |ctx| {
        let ic = rotating_disk(12);
        let mut sim = Simulation::new(ic, cfg(40));
        let measure = |p: &gpu_freq_scaling::sph::Particles| {
            let mut lz = 0.0;
            let mut mr = 0.0;
            let mut m = 0.0;
            for i in 0..p.n_local {
                lz += p.m[i] * (p.x[i] * p.vy[i] - p.y[i] * p.vx[i]);
                mr += p.m[i] * (p.x[i] * p.x[i] + p.y[i] * p.y[i]).sqrt();
                m += p.m[i];
            }
            (lz, mr / m)
        };
        let (lz0, r0) = measure(&sim.parts);
        let mut budgets = Vec::new();
        for _ in 0..10 {
            budgets.push(sim.step(ctx, &mut NullObserver).budget);
        }
        let (lz1, r1) = measure(&sim.parts);
        (lz0, lz1, r0, r1, budgets)
    })
    .remove(0);
    let (lz0, lz1, r0, r1, budgets) = out;
    assert!(lz0 > 0.1, "the disk must rotate: Lz = {lz0}");
    let lz_drift = (lz1 - lz0).abs() / lz0;
    assert!(lz_drift < 0.05, "Lz drift {lz_drift}: {lz0} -> {lz1}");
    let r_drift = (r1 - r0).abs() / r0;
    assert!(r_drift < 0.25, "mean radius moved {r_drift}: {r0} -> {r1}");
    let first = budgets.first().expect("steps");
    let last = budgets.last().expect("steps");
    let e_drift = (last.total() - first.total()).abs() / first.total().abs();
    assert!(e_drift < 0.1, "energy drift {e_drift}");
}

#[test]
fn sod_tube_launches_flow_from_rest_and_conserves_mass_and_energy() {
    // The pressure discontinuity starts everything at rest; the expansion
    // converts internal into kinetic energy symmetrically (the periodic box
    // has mirror interfaces, so net momentum stays zero) and conserves mass
    // and total energy.
    let out = run(1, CommCost::default(), |ctx| {
        let ic = sod(12);
        let mut sim = Simulation::new(ic, cfg(40));
        let mass0: f64 = sim.parts.m[..sim.parts.n_local].iter().sum();
        let ke_ic: f64 = (0..sim.parts.n_local)
            .map(|i| {
                let p = &sim.parts;
                0.5 * p.m[i] * (p.vx[i] * p.vx[i] + p.vy[i] * p.vy[i] + p.vz[i] * p.vz[i])
            })
            .sum();
        let mut budgets = Vec::new();
        for _ in 0..10 {
            budgets.push(sim.step(ctx, &mut NullObserver).budget);
        }
        let mass1: f64 = sim.parts.m[..sim.parts.n_local].iter().sum();
        let mut px = 0.0;
        for i in 0..sim.parts.n_local {
            px += sim.parts.m[i] * sim.parts.vx[i];
        }
        (mass0, mass1, ke_ic, px, budgets)
    })
    .remove(0);
    let (mass0, mass1, ke_ic, px, budgets) = out;
    assert!((mass1 - mass0).abs() / mass0 < 1e-12, "mass drift");
    let first = budgets.first().expect("steps");
    let last = budgets.last().expect("steps");
    assert!(ke_ic < 1e-12, "the tube starts at rest: KE = {ke_ic}");
    assert!(
        last.kinetic > 1e-4 && last.kinetic > first.kinetic,
        "the discontinuity must keep accelerating flow: {} -> {}",
        first.kinetic,
        last.kinetic
    );
    assert!(
        last.internal < first.internal,
        "expansion must cool the gas"
    );
    assert!(px.abs() < 1e-6, "mirror interfaces: net momentum {px}");
    let e_drift = (last.total() - first.total()).abs() / first.total().abs();
    assert!(e_drift < 0.05, "energy drift {e_drift}");
}

#[test]
fn plummer_sphere_stays_in_equilibrium() {
    // A Plummer model sampled from its own distribution function is a
    // steady state: over several dynamical steps the virial ratio stays
    // near 1 and the core does not collapse or explode.
    let out = run(1, CommCost::default(), |ctx| {
        let mut nb = NBody::new(plummer(700, 1.0, 3), 1e8);
        let mut ratios = Vec::new();
        for _ in 0..8 {
            let s = nb.step(ctx, &mut NullObserver);
            ratios.push(2.0 * s.budget.kinetic / s.budget.potential.abs());
        }
        ratios
    })
    .remove(0);
    for (i, r) in out.iter().enumerate() {
        assert!((0.5..1.5).contains(r), "virial ratio {r} at step {i}");
    }
    // No secular trend over this short window.
    let drift = (out.last().expect("steps") - out.first().expect("steps")).abs();
    assert!(drift < 0.3, "virial drift {drift}");
}

#[test]
fn kernel_choice_does_not_change_the_physics_class() {
    // Cubic spline, Wendland C6 and sinc^5 must agree on bulk observables
    // (densities within a few percent on the same configuration).
    let densities: Vec<f64> = [Kernel::CubicSpline, Kernel::WendlandC6, Kernel::Sinc5]
        .into_iter()
        .map(|kernel| {
            run(1, CommCost::default(), move |ctx| {
                let ic = subsonic_turbulence(8, 0.3, 5);
                let mut sim = Simulation::new(ic, SimConfig { kernel, ..cfg(40) });
                sim.step(ctx, &mut NullObserver);
                let p = &sim.parts;
                p.rho[..p.n_local].iter().sum::<f64>() / p.n_local as f64
            })
            .remove(0)
        })
        .collect();
    for (i, d) in densities.iter().enumerate() {
        assert!(
            (d - 1.0).abs() < 0.08,
            "kernel {i}: mean density {d} far from the uniform value"
        );
    }
    let spread = densities.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - densities.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 0.1, "kernels disagree: {densities:?}");
}
