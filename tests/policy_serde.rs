//! Spec-file round trips: every `FreqPolicy` variant must survive
//! serialization through an `ExperimentSpec` JSON (the `freqscale-run`
//! interchange format), and every committed spec under `specs/` must parse.

use std::collections::BTreeMap;

use gpu_freq_scaling::archsim::MegaHertz;
use gpu_freq_scaling::freqscale::{ExperimentSpec, FreqPolicy, FreqTable};
use gpu_freq_scaling::online::OnlineTunerConfig;
use gpu_freq_scaling::sph::FuncId;

fn every_policy() -> Vec<FreqPolicy> {
    let mut table = FreqTable::new();
    table.insert(FuncId::XMass, MegaHertz(1050));
    table.insert(FuncId::MomentumEnergy, MegaHertz(1410));
    let custom = OnlineTunerConfig {
        coarse_step: 6,
        max_freq: Some(MegaHertz(1380)),
        ..Default::default()
    };
    vec![
        FreqPolicy::Baseline,
        FreqPolicy::Static(MegaHertz(1110)),
        FreqPolicy::Dvfs,
        FreqPolicy::ManDyn(table),
        FreqPolicy::AutoTune {
            candidates: vec![MegaHertz(1005), MegaHertz(1200), MegaHertz(1410)],
            rounds: 2,
        },
        FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        FreqPolicy::ManDynOnline(custom),
    ]
}

#[test]
fn every_policy_variant_round_trips_through_a_spec_file() {
    for policy in every_policy() {
        let mut spec = ExperimentSpec::minihpc_turbulence(policy.clone(), 4);
        spec.power_cap_w = Some(300.0);
        spec.table_store = Some(std::path::PathBuf::from("tables"));
        let json = serde_json::to_string_pretty(&spec).expect("spec serializes");
        let back: ExperimentSpec = serde_json::from_str(&json).expect("spec parses back");
        assert_eq!(back.policy, policy, "policy must survive the round trip");
        assert_eq!(back.steps, spec.steps);
        assert_eq!(back.power_cap_w, Some(300.0));
        assert_eq!(back.table_store, spec.table_store);
    }
}

#[test]
fn mandyn_online_defaults_parse_from_an_empty_config() {
    // The documented spec-file shorthand: `{"ManDynOnline": {}}`.
    let policy: FreqPolicy = serde_json::from_str(r#"{"ManDynOnline": {}}"#).expect("parses");
    assert_eq!(
        policy,
        FreqPolicy::ManDynOnline(OnlineTunerConfig::default())
    );
}

#[test]
fn specs_without_the_online_fields_still_parse() {
    // The pre-online spec files committed under specs/ carry neither
    // `power_cap_w` nor `table_store`; both must default to off.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs/minihpc_baseline.json");
    let body = std::fs::read_to_string(&path).expect("readable spec");
    assert!(
        !body.contains("power_cap_w"),
        "legacy spec predates the field"
    );
    let back: ExperimentSpec = serde_json::from_str(&body).expect("legacy spec parses");
    assert_eq!(back.power_cap_w, None);
    assert_eq!(back.table_store, None);
}

#[test]
fn committed_spec_files_parse_and_cover_the_online_policy() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs");
    let mut labels = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("specs/ exists") {
        let path = entry.expect("entry").path();
        if path.extension().map(|e| e != "json").unwrap_or(true) {
            continue;
        }
        let body = std::fs::read_to_string(&path).expect("readable spec");
        let spec: ExperimentSpec = serde_json::from_str(&body)
            .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        labels.push(spec.policy.label());
    }
    labels.sort();
    assert!(labels.contains(&"baseline".to_string()));
    assert!(labels.contains(&"mandyn-online".to_string()));
}

#[test]
fn learned_tables_round_trip_as_stored_json() {
    // The TableStore payload reuses the same FuncId/MegaHertz serde as the
    // policy table, so a stored file is valid ManDyn input.
    let mut table: BTreeMap<FuncId, MegaHertz> = BTreeMap::new();
    for f in FuncId::ALL {
        table.insert(f, MegaHertz(1005 + (f as u32 % 5) * 15));
    }
    let json = serde_json::to_string(&table).expect("serializes");
    let back: BTreeMap<FuncId, MegaHertz> = serde_json::from_str(&json).expect("parses");
    assert_eq!(back, table);
    let policy = FreqPolicy::ManDyn(back);
    assert_eq!(policy.label(), "mandyn");
}
