//! Acceptance criteria for the predictive (model-fitting) tuner: judged
//! against the exhaustive (core, memory)-clock sweep as ground truth, the
//! probe-fit-jump path must land within one ladder bin of the true EDP
//! optimum on at least 90% of the instrumented kernels while spending at
//! least 5x fewer kernel launches.
//!
//! The tolerated miss is the roofline kink: a kernel whose compute and
//! memory times cross inside the sweep window (MomentumEnergy at paper
//! scale) has a nearly flat EDP curve that a single-regime fit can land a
//! few rungs off — which is exactly what the online policy's verification
//! launch and search fallback exist to catch.

use archsim::{GpuSpec, MegaHertz};
use sph::FuncId;
use tuner::{exhaustive_core_mem_sweep, predictive_core_mem_sweep, Objective, TuneOptions};

#[test]
fn predictive_sweep_matches_exhaustive_edp_optimum_with_5x_fewer_launches() {
    let gpu = GpuSpec::a100_sxm4_80gb();
    let n = 450.0f64.powi(3); // the paper's §III-C tuning scale
    let lo = MegaHertz(1005);
    let step = gpu.clock_table.step();
    let mem_index = |mhz: u32| {
        gpu.mem_clock_table
            .iter()
            .position(|p| p.0 == mhz)
            .unwrap_or_else(|| panic!("{mhz} MHz is not a P-state"))
    };

    let mut within_one_bin = 0usize;
    for func in FuncId::ALL {
        let truth = exhaustive_core_mem_sweep(
            func.name(),
            |_p, n| func.workload(n),
            n,
            &gpu,
            lo,
            TuneOptions {
                objective: Objective::Edp,
                iterations: 2,
                ..Default::default()
            },
        );
        let pred =
            predictive_core_mem_sweep(func.name(), |_p, n| func.workload(n), n, &gpu, lo, 4, 2)
                .expect("instrumented kernels fit the analytic model");

        // Launch budget: probes + verification vs the full product space.
        assert!(
            pred.measurements * 5 <= truth.configs.len(),
            "{}: {} measurements vs {} exhaustive configs",
            func.name(),
            pred.measurements,
            truth.configs.len()
        );

        let best = truth.best_config();
        let t_core = best.params.frequency().expect("core axis swept").0;
        let t_mem = best
            .params
            .memory_frequency()
            .map_or(gpu.mem_clock.0, |m| m.0);
        let core_ok = pred.predicted.f_core_mhz.abs_diff(t_core) <= step;
        let mem_ok = mem_index(pred.predicted.f_mem_mhz).abs_diff(mem_index(t_mem)) <= 1;
        if core_ok && mem_ok {
            within_one_bin += 1;
        }
    }

    let total = FuncId::ALL.len();
    assert!(
        within_one_bin * 10 >= total * 9,
        "only {within_one_bin}/{total} kernels within one bin of the exhaustive optimum"
    );
}
