//! End-to-end acceptance for the experiment service (`crates/serve` +
//! `ExperimentExecutor`): K concurrent same-key submissions share one
//! exploration, queue overflow is rejected cleanly, and chaos (a killed job,
//! a corrupt store entry) leaves the daemon serving.

use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gpu_freq_scaling::freqscale::{ExperimentExecutor, ExperimentSpec, FreqPolicy, WorkloadKind};
use gpu_freq_scaling::online::{OnlineTunerConfig, PredictiveConfig, TableStore};
use gpu_freq_scaling::serve::{
    client, Daemon, DaemonHandle, Executor, JobMeta, JobOutcome, ServeConfig, TableServerConfig,
};

fn tmp(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    let _ = std::fs::remove_file(&p);
    p
}

/// The proven full-pin online configuration from `tests/online_tuning.rs`:
/// every turbulence kernel pins within 70 steps, so the explorer always has
/// a non-empty table to publish.
fn online_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(
        FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        70,
    );
    spec.workload = WorkloadKind::Turbulence {
        n_side: 6,
        mach: 0.3,
        seed: 9,
    };
    spec.target_neighbors = 30;
    spec
}

/// The proven probe-free-warm-start predictive configuration from the
/// runner's own store round-trip test: 16 steps fit and pin every kernel,
/// so the explorer publishes both a table and model coefficients.
fn predictive_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(
        FreqPolicy::ManDynPredictive(PredictiveConfig::default()),
        16,
    );
    spec.workload = WorkloadKind::Turbulence {
        n_side: 6,
        mach: 0.3,
        seed: 1,
    };
    spec.target_neighbors = 30;
    spec
}

fn baseline_spec(steps: usize) -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, steps);
    spec.workload = WorkloadKind::Turbulence {
        n_side: 6,
        mach: 0.3,
        seed: 9,
    };
    spec.target_neighbors = 30;
    spec
}

fn spec_json(spec: &ExperimentSpec) -> String {
    serde_json::to_string(spec).unwrap()
}

fn start(tag: &str, queue: usize, workers: usize, store: Option<PathBuf>) -> DaemonHandle {
    let cfg = ServeConfig {
        socket: tmp(&format!("{tag}.sock")),
        queue_capacity: queue,
        workers,
        tables: TableServerConfig {
            dir: store,
            capacity: 8,
        },
    };
    Daemon::start(cfg, ExperimentExecutor).expect("daemon starts")
}

/// ISSUE acceptance: K=4 concurrent submissions of the same (GPU, workload)
/// key — exactly one explores, the other three warm-start from its published
/// table, pinned by exploration-launch counts.
#[test]
fn four_concurrent_same_key_submissions_share_one_exploration() {
    let store = tmp("k4-store");
    let handle = start("k4", 8, 4, Some(store.clone()));

    let spec = spec_json(&online_spec());
    let subs: Vec<(String, String)> = (0..4)
        .map(|i| (format!("turb-{i}"), spec.clone()))
        .collect();
    let results = client::submit_all(handle.socket(), &subs).expect("submit");

    assert_eq!(results.len(), 4);
    for r in &results {
        assert!(r.ok, "{}: {:?} {:?}", r.name, r.error, r.rejected);
    }
    let explorers: Vec<_> = results
        .iter()
        .filter(|r| r.exploration_launches > 0)
        .collect();
    let warm: Vec<_> = results.iter().filter(|r| r.warm_start).collect();
    assert_eq!(
        explorers.len(),
        1,
        "exactly one of K concurrent same-key jobs explores: {results:?}"
    );
    assert!(!explorers[0].warm_start);
    assert_eq!(warm.len(), 3, "the other three warm-start: {results:?}");
    for r in &warm {
        assert_eq!(
            r.exploration_launches, 0,
            "{}: warm start spends zero exploration launches",
            r.name
        );
        assert_eq!(
            r.table_version,
            Some(1),
            "{}: served the first publish",
            r.name
        );
    }

    let stats = client::stats(handle.socket()).expect("stats");
    assert_eq!(stats.jobs_completed, 4);
    assert_eq!(stats.tables.explorations, 1);
    assert_eq!(stats.tables.publishes, 1);
    assert_eq!(stats.tables.warm_starts, 3);

    // The explored table reached the on-disk store through write-behind.
    client::shutdown(handle.socket()).expect("shutdown");
    handle.join();
    let disk = TableStore::open(&store).unwrap();
    let entries = disk.list().unwrap();
    assert_eq!(entries.len(), 1, "one (GPU, workload) slot persisted");
    assert!(!entries[0].table.is_empty());
    assert_eq!(entries[0].version, 1);
    let _ = std::fs::remove_dir_all(&store);
}

/// Tentpole acceptance, serving layer: a predictive job's fitted
/// coefficients travel through the table server — the explorer publishes
/// models alongside its table, write-behind persists both, and a repeat
/// submission of the same key warm-starts *probe-free* (zero exploration
/// launches) from the served models.
#[test]
fn served_predictive_warm_start_skips_probe_phase() {
    let store = tmp("predictive-store");
    let handle = start("predictive", 4, 1, Some(store.clone()));

    let spec = spec_json(&predictive_spec());
    let cold = client::submit_all(handle.socket(), &[("pred-cold".to_string(), spec.clone())])
        .expect("submit");
    assert!(cold[0].ok, "{:?}", cold[0].error);
    assert!(!cold[0].warm_start, "first submission explores");
    assert!(
        cold[0].exploration_launches > 0,
        "cold predictive run spends probe launches"
    );

    let warm =
        client::submit_all(handle.socket(), &[("pred-warm".to_string(), spec)]).expect("submit");
    assert!(warm[0].ok, "{:?}", warm[0].error);
    assert!(warm[0].warm_start, "second submission is served warm");
    assert_eq!(
        warm[0].exploration_launches, 0,
        "served models must skip even the probe phase"
    );

    client::shutdown(handle.socket()).expect("shutdown");
    handle.join();
    // Write-behind persisted the coefficients in the batch-store layout.
    let disk = TableStore::open(&store).unwrap();
    let entries = disk.list().unwrap();
    assert_eq!(entries.len(), 1);
    assert!(!entries[0].table.is_empty(), "table persisted");
    assert!(!entries[0].models.is_empty(), "models persisted");
    let _ = std::fs::remove_dir_all(&store);
}

/// `ExperimentExecutor` behind a gate, so jobs stay in flight while the
/// queue is deliberately overflowed.
struct GatedExecutor {
    inner: ExperimentExecutor,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl Executor for GatedExecutor {
    fn validate(&self, spec_json: &str) -> Result<JobMeta, String> {
        self.inner.validate(spec_json)
    }

    fn execute(
        &self,
        spec_json: &str,
        warm: Option<&gpu_freq_scaling::online::LearnedTable>,
        warm_models: &gpu_freq_scaling::online::StoredModels,
    ) -> Result<JobOutcome, String> {
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
        drop(open);
        self.inner.execute(spec_json, warm, warm_models)
    }
}

/// ISSUE acceptance: overflowing the queue returns `rejected: queue_full`
/// for the excess submission without wedging the daemon — held jobs still
/// finish, and a fresh submission afterwards completes.
#[test]
fn queue_overflow_rejects_queue_full_without_wedging() {
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let cfg = ServeConfig {
        socket: tmp("overflow.sock"),
        queue_capacity: 2,
        workers: 1,
        tables: TableServerConfig {
            dir: None,
            capacity: 8,
        },
    };
    let exec = GatedExecutor {
        inner: ExperimentExecutor,
        gate: gate.clone(),
    };
    let handle = Daemon::start(cfg, exec).expect("daemon starts");
    let socket = handle.socket().to_path_buf();

    // The worker holds held-0 at the gate; submit_all blocks until jobs
    // finish, so each held batch runs on a thread.
    let spec = spec_json(&baseline_spec(2));
    let wait_for = |want_submitted: u64, want_depth: usize, what: &str| {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let stats = client::stats(&socket).expect("stats");
            if stats.jobs_submitted >= want_submitted && stats.queue_depth == want_depth {
                return;
            }
            assert!(Instant::now() < deadline, "{what}: {stats:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    let first = {
        let (socket, spec) = (socket.clone(), spec.clone());
        std::thread::spawn(move || {
            client::submit_all(&socket, &[("held-0".into(), spec)]).expect("held-0")
        })
    };
    wait_for(1, 0, "worker never picked up held-0");

    // With the only worker gated, two more submissions fill the queue.
    let rest = {
        let (socket, spec) = (socket.clone(), spec.clone());
        std::thread::spawn(move || {
            client::submit_all(
                &socket,
                &[("held-1".into(), spec.clone()), ("held-2".into(), spec)],
            )
            .expect("held batch")
        })
    };
    wait_for(3, 2, "held-1/held-2 never queued");

    // Queue is full: the next submission is rejected, cleanly.
    let overflow = client::submit_all(&socket, &[("extra".into(), spec.clone())]).expect("submit");
    assert_eq!(overflow.len(), 1);
    assert_eq!(overflow[0].rejected.as_deref(), Some("queue_full"));
    assert!(!overflow[0].ok);

    // Open the gate: everything held drains and finishes ok.
    {
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
    let mut results = first.join().unwrap();
    results.extend(rest.join().unwrap());
    assert!(results.iter().all(|r| r.ok), "{results:?}");

    // Not wedged: a fresh submission completes.
    let fresh = client::submit_all(&socket, &[("fresh".into(), spec)]).expect("submit");
    assert!(fresh[0].ok, "{fresh:?}");

    let stats = client::stats(&socket).expect("stats");
    assert_eq!(stats.jobs_rejected, 1);
    assert_eq!(stats.jobs_completed, 4);
    client::shutdown(&socket).expect("shutdown");
    handle.join();
}

/// ISSUE acceptance: chaos — a job killed mid-run (panicking executor) and
/// a corrupt store entry — leaves the daemon accepting and completing new
/// submissions.
#[test]
fn killed_job_and_corrupt_store_entry_leave_daemon_serving() {
    let store_dir = tmp("chaos-store");

    // A distinct (GPU, workload) slot, pre-populated then corrupted on disk.
    let mut corrupt_victim = online_spec();
    corrupt_victim.target_particles_per_rank = 300.0f64.powi(3);
    {
        let store = TableStore::open(&store_dir).unwrap();
        let gpu = corrupt_victim.system.node.gpu.name.clone();
        store
            .save(&gpu, &corrupt_victim.table_store_key(), &Default::default())
            .unwrap();
        let entry = std::fs::read_dir(&store_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.path().extension().is_some_and(|x| x == "json"))
            .expect("seeded entry on disk");
        std::fs::write(entry.path(), "{torn mid-write, not a StoredTable").unwrap();
    }

    let handle = start("chaos", 8, 2, Some(store_dir.clone()));

    // Kill vector: passes validation, then dies inside the runner — an
    // off-ladder `--gpu-freq` makes the privileged clock set panic.
    let mut killer = baseline_spec(2);
    killer.slurm_gpu_freq = Some(gpu_freq_scaling::archsim::MegaHertz(1007));

    let results = client::submit_all(
        handle.socket(),
        &[
            ("killer".into(), spec_json(&killer)),
            ("corrupt-slot".into(), spec_json(&corrupt_victim)),
        ],
    )
    .expect("submit");

    let killed = results.iter().find(|r| r.name == "killer").unwrap();
    assert!(!killed.ok, "off-ladder clock request must fail the job");
    assert!(
        killed.error.as_deref().unwrap_or("").contains("ladder"),
        "failure surfaces the panic message: {:?}",
        killed.error
    );

    // The corrupt entry cost one cold-start exploration, not a crash.
    let survivor = results.iter().find(|r| r.name == "corrupt-slot").unwrap();
    assert!(survivor.ok, "{:?}", survivor.error);
    assert!(!survivor.warm_start, "corrupt entry cannot warm-start");
    assert!(survivor.exploration_launches > 0);
    let aside = std::fs::read_dir(&store_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .any(|e| e.path().to_string_lossy().ends_with(".json.corrupt"));
    assert!(aside, "corrupt bytes moved aside for inspection");

    // Still serving: a fresh submission after both chaos vectors completes.
    let fresh = client::submit_all(
        handle.socket(),
        &[("fresh".into(), spec_json(&baseline_spec(2)))],
    )
    .expect("submit");
    assert!(fresh[0].ok, "{fresh:?}");

    let stats = client::stats(handle.socket()).expect("stats");
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs_completed, 2);
    client::shutdown(handle.socket()).expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&store_dir);
}
